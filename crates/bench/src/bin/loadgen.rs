//! `loadgen` — load generator for the `wolt-daemon` Central Controller.
//!
//! Boots the daemon on a loopback port, connects one agent per user, and
//! drives a long churn session (every user joins, then repeated
//! leave/join cycles round-robin) so the controller re-solves hundreds of
//! times under sustained protocol traffic. Reports:
//!
//! * sustained protocol throughput (messages/second into the CC), and
//! * re-solve latency percentiles — receipt of the triggering report or
//!   departure to the last directive ack of the transaction.
//!
//! After the load run, three short chaos probes measure the robustness
//! surface and land in the report's `chaos` block:
//!
//! * crash recovery — a session interrupted mid-way with its newest
//!   snapshot generation torn in half (the exact state the mid-write
//!   crash point leaves behind), then restarted: wall-clock recovery
//!   time, rollback count, and byte-identity against the clean rig;
//! * overload — a flood client past a tiny inbox cap plus over-cap
//!   connection probes: exact shed and busy-rejection counts;
//! * read deadline — a mid-frame staller: timeout count.
//!
//! Fully offline: 127.0.0.1 only, no external services. Writes
//! `BENCH_daemon.json` (canonical workspace JSON) into the current
//! directory alongside the usual CSV rows.
//!
//! ```text
//! cargo run --release -p wolt-bench --bin loadgen -- [users] [cycles] [output]
//! ```

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::{Duration, Instant};

use wolt_bench::{columns, f2, header, measured, percentile_sorted, row};
use wolt_daemon::{
    run_agent, run_site_agent, wire, AgentRetry, Daemon, DaemonConfig, DaemonOutcome, Envelope,
};
use wolt_fleet::{Fleet, FleetConfig, SiteDef};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::json::{Json, ToJson};
use wolt_support::obs;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};
use wolt_testbed::protocol::ToController;
use wolt_testbed::{
    coalesce_frames, run_faulty_session, ControllerConfig, ControllerCore, ControllerPolicy,
    FaultPlan, ReportFrame, RigConfig, SessionEvent,
};

const SCENARIO_SEED: u64 = 42;
const NOISE_SEED: u64 = 7;

fn churn_events(users: usize, cycles: usize) -> Vec<SessionEvent> {
    let mut events: Vec<SessionEvent> = (0..users).map(SessionEvent::Join).collect();
    for c in 0..cycles {
        let i = c % users;
        events.push(SessionEvent::Leave(i));
        events.push(SessionEvent::Join(i));
    }
    events
}

fn run_with(scenario: &Scenario, events: &[SessionEvent], config: DaemonConfig) -> DaemonOutcome {
    let daemon = Daemon::bind("127.0.0.1:0", scenario.clone(), events.to_vec(), config)
        .expect("loopback bind");
    let addr = daemon.local_addr().expect("bound address");
    let agents: Vec<_> = (0..scenario.user_positions.len())
        .map(|i| {
            let scenario = scenario.clone();
            thread::spawn(move || run_agent(addr, &scenario, i, &format!("load-{i}")))
        })
        .collect();
    let outcome = daemon.run().expect("session runs");
    for handle in agents {
        handle
            .join()
            .expect("agent thread")
            .expect("agent exits cleanly");
    }
    outcome
}

fn run_load(scenario: &Scenario, events: &[SessionEvent]) -> DaemonOutcome {
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    run_with(scenario, events, config)
}

/// Everything the three chaos probes measure, destined for the report's
/// `chaos` block.
struct ChaosProbe {
    recovery_ms: f64,
    replayed_epochs: usize,
    snapshot_rollbacks: u64,
    canonical_match: bool,
    busy_rejections: u64,
    frames_shed: u64,
    read_timeouts: u64,
}

fn probe_scenario(users: usize, seed: u64) -> Scenario {
    let cfg = ScenarioConfig::lab(users);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Scenario::generate(&cfg, &mut rng).expect("probe scenario generates")
}

fn probe_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wolt-loadgen-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn newest_generation(dir: &Path) -> PathBuf {
    std::fs::read_dir(dir)
        .expect("snapshot dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .max_by_key(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("snapshot."))
                .and_then(|n| n.strip_suffix(".json"))
                .and_then(|n| n.parse::<u64>().ok())
                .unwrap_or(0)
        })
        .expect("at least one generation")
}

/// Polls the daemon's metrics endpoint over `stream` until `done`
/// approves a snapshot, then returns it. The caller owns the stream so
/// connection-slot accounting stays explicit.
fn await_metrics(
    stream: &mut TcpStream,
    what: &str,
    done: impl Fn(&obs::ObsSnapshot) -> bool,
) -> obs::ObsSnapshot {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        wire::send(stream, &Envelope::MetricsRequest).expect("metrics request sends");
        match wire::recv(stream).expect("metrics reply arrives") {
            Some(Envelope::Metrics { metrics }) => {
                if done(&metrics) {
                    return metrics;
                }
                assert!(
                    Instant::now() < deadline,
                    "daemon never reached the expected state ({what})"
                );
                thread::sleep(Duration::from_millis(25));
            }
            other => panic!("expected a metrics reply, got {other:?}"),
        }
    }
}

/// Crash-recovery probe: run a short session that stops after the join
/// wave, tear the newest snapshot generation in half (the on-disk state
/// the mid-write crash point leaves behind), then restart against the
/// same store and time the run back to a completed, byte-identical
/// report.
fn recovery_probe(users: usize) -> (f64, usize, u64, bool) {
    let scenario = probe_scenario(users, SCENARIO_SEED);
    let mut events: Vec<SessionEvent> = (0..users).map(SessionEvent::Join).collect();
    events.push(SessionEvent::Leave(0));
    events.push(SessionEvent::Join(0));
    let reference = run_faulty_session(
        &scenario,
        &RigConfig::new(ControllerPolicy::Wolt),
        &events,
        NOISE_SEED,
        &FaultPlan::none(),
    )
    .expect("rig reference");

    let snap_dir = probe_dir("recovery");
    let stop_after = users;
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    config.snapshot_dir = Some(snap_dir.clone());
    config.stop_after = Some(stop_after);
    let first = run_with(&scenario, &events, config);
    assert_eq!(first.epochs_done, stop_after, "probe stopped where asked");

    let newest = newest_generation(&snap_dir);
    let bytes = std::fs::read(&newest).expect("newest generation reads");
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).expect("torn write lands");

    let rollbacks_before = obs::snapshot().counter("daemon.snapshot_rollbacks");
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    config.snapshot_dir = Some(snap_dir.clone());
    let started = Instant::now();
    let second = run_with(&scenario, &events, config);
    let recovery = started.elapsed();
    let _ = std::fs::remove_dir_all(&snap_dir);

    assert!(second.completed, "recovery probe must complete");
    let rollbacks = obs::snapshot().counter("daemon.snapshot_rollbacks") - rollbacks_before;
    // The restart rolls back one generation and replays from there.
    let replayed = events.len() - (stop_after - 1);
    let matched = second.report.canonical() == reference.canonical();
    (recovery.as_secs_f64() * 1e3, replayed, rollbacks, matched)
}

/// Overload probe: with the connection cap provably full (agent, flood
/// client, metrics poller) and the session provably inside its linger
/// window, fire over-cap connection probes and a telemetry flood past a
/// tiny inbox cap. Rejections are exact (5); sheds are at least
/// 20 − 4 = 16, plus any agent retransmit that lands in the flood
/// window.
fn overload_probe() -> (u64, u64) {
    let before = obs::snapshot();
    let scenario = probe_scenario(2, SCENARIO_SEED + 1);
    let n_ext = scenario.extender_positions.len();
    let snap_dir = probe_dir("overload");
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    config.inbox_cap = 4;
    config.max_connections = 3;
    config.snapshot_dir = Some(snap_dir.clone());
    config.linger = Duration::from_secs(4);
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        scenario.clone(),
        vec![SessionEvent::Join(0)],
        config,
    )
    .expect("loopback bind");
    let addr = daemon.local_addr().expect("bound address");
    let agent = {
        let scenario = scenario.clone();
        thread::spawn(move || run_agent(addr, &scenario, 0, "load-0"))
    };
    let daemon = thread::spawn(move || daemon.run());

    // Flood client: a real handshake so its frames reach the session
    // inbox, but never the subject of any event.
    let mut flooder = TcpStream::connect(addr).expect("flooder connects");
    flooder
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    wire::send(
        &mut flooder,
        &Envelope::Hello {
            client: 1,
            name: "flooder".into(),
            site: None,
        },
    )
    .expect("flooder hello");
    assert!(matches!(
        wire::recv(&mut flooder).expect("flooder ack"),
        Some(Envelope::HelloAck { .. })
    ));
    let mut poller = TcpStream::connect(addr).expect("poller connects");
    poller
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    await_metrics(&mut poller, "one snapshot saved", |m| {
        m.counter("daemon.snapshots") > before.counter("daemon.snapshots")
    });

    // Cap full: agent + flooder + poller hold all three slots.
    for _ in 0..5 {
        let mut extra = TcpStream::connect(addr).expect("probe connects");
        extra
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        match wire::recv(&mut extra).expect("busy reply") {
            Some(Envelope::Busy { limit }) => assert_eq!(limit, 3),
            other => panic!("expected a busy reply, got {other:?}"),
        }
    }
    for _ in 0..20 {
        wire::send(
            &mut flooder,
            &Envelope::Ctrl(ToController::Report {
                client: 1,
                epoch: 999,
                rates: vec![None; n_ext],
                attached: 0,
            }),
        )
        .expect("flood frame sends");
    }
    await_metrics(&mut poller, "16 frames shed", |m| {
        m.counter("daemon.frames_shed") >= before.counter("daemon.frames_shed") + 16
    });
    drop(flooder);
    drop(poller);

    let outcome = daemon.join().expect("daemon thread").expect("session runs");
    agent.join().expect("agent thread").expect("agent exits");
    let _ = std::fs::remove_dir_all(&snap_dir);
    assert!(outcome.completed, "overload probe must complete");
    let after = obs::snapshot();
    (
        after.counter("daemon.conns_rejected") - before.counter("daemon.conns_rejected"),
        after.counter("daemon.frames_shed") - before.counter("daemon.frames_shed"),
    )
}

/// Read-deadline probe: a connection that starts a frame and never
/// finishes it must be closed at the mid-frame deadline and counted.
fn stall_probe() -> u64 {
    let before = obs::snapshot();
    let scenario = probe_scenario(1, SCENARIO_SEED + 2);
    let snap_dir = probe_dir("stall");
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    config.read_stall = Duration::from_millis(200);
    config.snapshot_dir = Some(snap_dir.clone());
    config.linger = Duration::from_secs(3);
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        scenario.clone(),
        vec![SessionEvent::Join(0)],
        config,
    )
    .expect("loopback bind");
    let addr = daemon.local_addr().expect("bound address");
    let agent = {
        let scenario = scenario.clone();
        thread::spawn(move || run_agent(addr, &scenario, 0, "load-0"))
    };
    let daemon = thread::spawn(move || daemon.run());
    let mut poller = TcpStream::connect(addr).expect("poller connects");
    poller
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    await_metrics(&mut poller, "one snapshot saved", |m| {
        m.counter("daemon.snapshots") > before.counter("daemon.snapshots")
    });

    let mut staller = TcpStream::connect(addr).expect("staller connects");
    staller
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    {
        use std::io::Write as _;
        staller.write_all(&16u32.to_be_bytes()).unwrap();
        staller.write_all(b"{\"t\"").unwrap();
        staller.flush().unwrap();
    }
    // The daemon hangs up — that EOF is the deadline firing.
    {
        use std::io::Read as _;
        let mut buf = [0u8; 16];
        let n = staller.read(&mut buf).expect("staller read");
        assert_eq!(n, 0, "daemon should close the stalled connection");
    }
    drop(poller);

    let outcome = daemon.join().expect("daemon thread").expect("session runs");
    agent.join().expect("agent thread").expect("agent exits");
    let _ = std::fs::remove_dir_all(&snap_dir);
    assert!(outcome.completed, "stall probe must complete");
    obs::snapshot().counter("daemon.read_timeouts") - before.counter("daemon.read_timeouts")
}

/// What the coalescing probe measured, destined for the report's
/// `coalescing` block: the same deterministic burst of scan reports
/// replayed through two identical `ControllerCore`s — one report at a
/// time, then in drained batches — with the planning work counted both
/// ways.
struct CoalescingProbe {
    frames: usize,
    batch_size: usize,
    per_report_solves: u64,
    batched_solves: u64,
    warm_solves: u64,
    frames_coalesced: usize,
    solve_reduction: f64,
}

/// Burst-telemetry probe at the controller level. The wire path absorbs
/// same-epoch burst copies in the watermark dedup, so the planning
/// saving of coalescing is measured where it happens: a fixed frame
/// sequence (each client reporting twice back-to-back, epochs strictly
/// increasing) costs one solve per frame replayed singly, but one
/// planning pass per drained batch — cold or warm — when coalesced.
fn coalescing_probe(users: usize) -> CoalescingProbe {
    const FRAMES: usize = 160;
    const BATCH: usize = 8;
    let scenario = probe_scenario(users, SCENARIO_SEED + 3);
    let n_ext = scenario.extender_positions.len();
    let config = || ControllerConfig {
        policy: ControllerPolicy::Wolt,
        estimated_capacities: scenario.capacities.clone(),
        strict: false,
    };
    let frames: Vec<ReportFrame> = (0..FRAMES)
        .map(|i| {
            let client = (i / 2) % users;
            let rates: Vec<_> = (0..n_ext).map(|j| scenario.rate(client, j)).collect();
            let attached = (0..n_ext)
                .max_by(|&a, &b| {
                    let r = |j: usize| rates[j].map_or(f64::NEG_INFINITY, f64::from);
                    r(a).total_cmp(&r(b))
                })
                .expect("scenario has extenders");
            ReportFrame {
                client,
                epoch: (i + 1) as u64,
                rates,
                attached,
            }
        })
        .collect();

    let before = obs::snapshot();
    let mut plain = ControllerCore::new(users, config());
    for f in &frames {
        if plain.is_duplicate(f.epoch) {
            continue;
        }
        plain
            .handle_report(f.client, f.epoch, &f.rates, f.attached)
            .expect("per-report replay plans");
    }
    let mid = obs::snapshot();

    let mut batched = ControllerCore::new(users, config());
    let mut frames_coalesced = 0usize;
    for chunk in frames.chunks(BATCH) {
        let (kept, dropped) = coalesce_frames(chunk.to_vec());
        frames_coalesced += dropped;
        batched
            .handle_report_batch(&kept)
            .expect("batched replay plans");
    }
    let after = obs::snapshot();

    let per_report_solves = mid.counter("core.solves") - before.counter("core.solves");
    let batched_solves = after.counter("core.solves") - mid.counter("core.solves");
    let warm_solves = after.counter("core.warm_solves") - mid.counter("core.warm_solves");
    let batched_passes = (batched_solves + warm_solves).max(1);
    CoalescingProbe {
        frames: FRAMES,
        batch_size: BATCH,
        per_report_solves,
        batched_solves,
        warm_solves,
        frames_coalesced,
        solve_reduction: per_report_solves as f64 / batched_passes as f64,
    }
}

/// What the multi-site fleet run measured, destined for the report's
/// `fleet` block: sustained throughput across all sites sharing one
/// daemon, and each site's tail re-solve latency.
struct FleetProbe {
    sites: usize,
    users_per_site: usize,
    epochs: usize,
    msgs_in: usize,
    elapsed_ms: f64,
    msgs_per_sec: f64,
    per_site_p99_us: Vec<(String, f64)>,
}

/// Fleet mode: three churn sessions with distinct seeds and policies
/// multiplexed behind one `Fleet`, one agent per (site, user). The
/// per-site latencies come out of each site's own `DaemonOutcome`, so
/// a slow neighbour site shows up only through genuine contention.
fn fleet_probe(users: usize, cycles: usize) -> FleetProbe {
    let site_recipes: [(&str, u64, ControllerPolicy); 3] = [
        ("alpha", SCENARIO_SEED, ControllerPolicy::Wolt),
        ("beta", SCENARIO_SEED + 1, ControllerPolicy::Greedy),
        ("gamma", SCENARIO_SEED + 2, ControllerPolicy::Rssi),
    ];
    let events = churn_events(users, cycles);
    let defs: Vec<SiteDef> = site_recipes
        .iter()
        .map(|&(id, seed, policy)| SiteDef {
            id: id.to_string(),
            scenario: probe_scenario(users, seed),
            events: events.clone(),
            policy,
            noise_seed: NOISE_SEED,
            stop_after: None,
        })
        .collect();
    let scenarios: Vec<(String, Scenario)> = defs
        .iter()
        .map(|d| (d.id.clone(), d.scenario.clone()))
        .collect();
    let fleet =
        Fleet::bind("127.0.0.1:0", defs, FleetConfig::default()).expect("fleet loopback bind");
    let addr = fleet.local_addr().expect("bound address");
    let agents: Vec<_> = scenarios
        .iter()
        .flat_map(|(site, scenario)| {
            (0..users).map(|i| {
                let site = site.clone();
                let scenario = scenario.clone();
                thread::spawn(move || {
                    run_site_agent(
                        addr,
                        &scenario,
                        &site,
                        i,
                        &format!("{site}-{i}"),
                        &AgentRetry::default(),
                    )
                })
            })
        })
        .collect();
    let started = Instant::now();
    let outcome = fleet.run().expect("fleet runs");
    let elapsed = started.elapsed();
    for handle in agents {
        handle
            .join()
            .expect("agent thread")
            .expect("agent exits cleanly");
    }
    assert!(outcome.all_completed(), "fleet probe must complete");

    let mut epochs = 0;
    let mut msgs_in = 0usize;
    let mut per_site_p99_us = Vec::new();
    for (id, result) in &outcome.sites {
        let o = result.as_ref().expect("site outcome");
        epochs += o.epochs_done;
        msgs_in += o.stats.msgs_in;
        let mut sorted = o.stats.resolve_latencies.clone();
        sorted.sort();
        per_site_p99_us.push((id.clone(), micros(percentile(&sorted, 99.0))));
    }
    let elapsed_s = elapsed.as_secs_f64();
    FleetProbe {
        sites: site_recipes.len(),
        users_per_site: users,
        epochs,
        msgs_in,
        elapsed_ms: elapsed_s * 1e3,
        msgs_per_sec: msgs_in as f64 / elapsed_s,
        per_site_p99_us,
    }
}

fn chaos_probes(users: usize) -> ChaosProbe {
    let (recovery_ms, replayed_epochs, snapshot_rollbacks, canonical_match) = recovery_probe(users);
    let (busy_rejections, frames_shed) = overload_probe();
    let read_timeouts = stall_probe();
    ChaosProbe {
        recovery_ms,
        replayed_epochs,
        snapshot_rollbacks,
        canonical_match,
        busy_rejections,
        frames_shed,
        read_timeouts,
    }
}

/// Nearest-rank percentile over sorted samples; zero when there are
/// none (shared edge-case contract — see [`percentile_sorted`]).
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    percentile_sorted(sorted, p).unwrap_or(Duration::ZERO)
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let mut args = std::env::args().skip(1);
    let users: usize = args.next().map_or(7, |a| a.parse().expect("users"));
    let cycles: usize = args.next().map_or(60, |a| a.parse().expect("cycles"));
    let output = args.next().unwrap_or_else(|| "BENCH_daemon.json".into());

    header(
        "loadgen — wolt-daemon sustained load over loopback TCP",
        "the networked CC sustains agent traffic and re-solves within interactive latencies",
        &format!(
            "lab scenario seed {SCENARIO_SEED}, {users} users, {cycles} leave/join churn cycles, \
             WOLT policy, 127.0.0.1"
        ),
    );

    let scenario_config = ScenarioConfig::lab(users);
    let mut rng = ChaCha8Rng::seed_from_u64(SCENARIO_SEED);
    let scenario = Scenario::generate(&scenario_config, &mut rng).expect("scenario generates");

    let events = churn_events(users, cycles);
    let outcome = run_load(&scenario, &events);
    assert!(outcome.completed, "load session did not complete");
    assert_eq!(outcome.epochs_done, events.len());

    let stats = &outcome.stats;
    let elapsed_s = stats.elapsed.as_secs_f64();
    let msgs_per_sec = stats.msgs_in as f64 / elapsed_s;
    let mut sorted = stats.resolve_latencies.clone();
    sorted.sort();
    let (p50, p90, p99) = (
        percentile(&sorted, 50.0),
        percentile(&sorted, 90.0),
        percentile(&sorted, 99.0),
    );
    let max = sorted.last().copied().unwrap_or(Duration::ZERO);

    columns(&[
        "users",
        "epochs",
        "msgs_in",
        "elapsed_ms",
        "msgs_per_sec",
        "resolve_p50_us",
        "resolve_p90_us",
        "resolve_p99_us",
        "resolve_max_us",
    ]);
    row(&[
        users.to_string(),
        outcome.epochs_done.to_string(),
        stats.msgs_in.to_string(),
        f2(elapsed_s * 1e3),
        f2(msgs_per_sec),
        f2(micros(p50)),
        f2(micros(p90)),
        f2(micros(p99)),
        f2(micros(max)),
    ]);

    // Freeze the load run's observability snapshot before the fleet and
    // chaos probes add their own traffic to the process-global counters.
    let load_metrics = obs::snapshot();

    // Fleet mode: the same churn, three sites behind one daemon.
    let fleet = fleet_probe(users, cycles);
    let mut fleet_cols = vec![
        "fleet_sites".to_string(),
        "fleet_epochs".to_string(),
        "fleet_msgs_per_sec".to_string(),
    ];
    let mut fleet_row = vec![
        fleet.sites.to_string(),
        fleet.epochs.to_string(),
        f2(fleet.msgs_per_sec),
    ];
    for (site, p99) in &fleet.per_site_p99_us {
        fleet_cols.push(format!("{site}_resolve_p99_us"));
        fleet_row.push(f2(*p99));
    }
    columns(&fleet_cols.iter().map(String::as_str).collect::<Vec<_>>());
    row(&fleet_row);

    // Burst coalescing: the same frame sequence costs one solve per
    // report replayed singly, one planning pass per drained batch.
    let coalescing = coalescing_probe(users);
    assert!(
        coalescing.solve_reduction >= 2.0,
        "coalescing saved less than 2x planning work ({:.2}x)",
        coalescing.solve_reduction
    );
    columns(&[
        "burst_frames",
        "burst_batch",
        "per_report_solves",
        "batched_solves",
        "warm_solves",
        "frames_coalesced",
        "solve_reduction",
    ]);
    row(&[
        coalescing.frames.to_string(),
        coalescing.batch_size.to_string(),
        coalescing.per_report_solves.to_string(),
        coalescing.batched_solves.to_string(),
        coalescing.warm_solves.to_string(),
        coalescing.frames_coalesced.to_string(),
        f2(coalescing.solve_reduction),
    ]);

    let chaos = chaos_probes(users);
    assert!(
        chaos.canonical_match,
        "recovered session diverged from the clean rig"
    );

    columns(&[
        "chaos_recovery_ms",
        "chaos_replayed_epochs",
        "chaos_rollbacks",
        "busy_rejections",
        "frames_shed",
        "read_timeouts",
        "canonical_match",
    ]);
    row(&[
        f2(chaos.recovery_ms),
        chaos.replayed_epochs.to_string(),
        chaos.snapshot_rollbacks.to_string(),
        chaos.busy_rejections.to_string(),
        chaos.frames_shed.to_string(),
        chaos.read_timeouts.to_string(),
        chaos.canonical_match.to_string(),
    ]);

    let json = Json::obj(vec![
        ("bench", "loadgen".to_string().to_json()),
        ("scenario", "lab".to_string().to_json()),
        ("scenario_seed", SCENARIO_SEED.to_json()),
        ("users", users.to_json()),
        ("churn_cycles", cycles.to_json()),
        ("epochs", outcome.epochs_done.to_json()),
        ("msgs_in", stats.msgs_in.to_json()),
        ("elapsed_ms", (elapsed_s * 1e3).to_json()),
        ("msgs_per_sec", msgs_per_sec.to_json()),
        (
            "resolve_latency_us",
            Json::obj(vec![
                ("p50", micros(p50).to_json()),
                ("p90", micros(p90).to_json()),
                ("p99", micros(p99).to_json()),
                ("max", micros(max).to_json()),
                ("samples", sorted.len().to_json()),
            ]),
        ),
        ("canonical_report", outcome.report.canonical().to_json()),
        // The load run's observability snapshot: daemon wire traffic,
        // controller decisions, solver work — counted before the chaos
        // probes touch the process-global counters.
        ("metrics", load_metrics.to_json()),
        // Fleet mode: three sites (distinct seeds and policies) behind
        // one daemon, same churn per site — sustained throughput across
        // the fleet and every site's own tail re-solve latency.
        (
            "fleet",
            Json::obj(vec![
                ("sites", fleet.sites.to_json()),
                ("users_per_site", fleet.users_per_site.to_json()),
                ("epochs", fleet.epochs.to_json()),
                ("msgs_in", fleet.msgs_in.to_json()),
                ("elapsed_ms", fleet.elapsed_ms.to_json()),
                ("msgs_per_sec", fleet.msgs_per_sec.to_json()),
                (
                    "per_site_resolve_p99_us",
                    Json::Obj(
                        fleet
                            .per_site_p99_us
                            .iter()
                            .map(|(site, p99)| (site.clone(), p99.to_json()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        // Burst-telemetry coalescing at the controller: planning work
        // per frame replayed singly vs per drained batch (cold solves
        // plus warm-started refinements), and the frames dropped as
        // stale burst copies along the way.
        (
            "coalescing",
            Json::obj(vec![
                ("frames", coalescing.frames.to_json()),
                ("batch_size", coalescing.batch_size.to_json()),
                ("per_report_solves", coalescing.per_report_solves.to_json()),
                ("batched_solves", coalescing.batched_solves.to_json()),
                ("warm_solves", coalescing.warm_solves.to_json()),
                ("frames_coalesced", coalescing.frames_coalesced.to_json()),
                ("solve_reduction", coalescing.solve_reduction.to_json()),
            ]),
        ),
        // The robustness surface, measured live: torn-store recovery,
        // inbox shedding, connection-cap rejections, read deadlines.
        (
            "chaos",
            Json::obj(vec![
                ("recovery_ms", chaos.recovery_ms.to_json()),
                ("replayed_epochs", chaos.replayed_epochs.to_json()),
                ("snapshot_rollbacks", chaos.snapshot_rollbacks.to_json()),
                ("canonical_match", chaos.canonical_match.to_json()),
                ("busy_rejections", chaos.busy_rejections.to_json()),
                ("frames_shed", chaos.frames_shed.to_json()),
                ("read_timeouts", chaos.read_timeouts.to_json()),
            ]),
        ),
    ]);
    std::fs::write(&output, format!("{}\n", json.to_pretty())).expect("write bench json");
    eprintln!("wrote {output}");

    measured(&format!(
        "sustained {msgs_per_sec:.0} msgs/s over {} epochs; re-solve latency p50 = {:.0} us, \
         p99 = {:.0} us (loopback TCP, directive acks included)",
        outcome.epochs_done,
        micros(p50),
        micros(p99),
    ));
    measured(&format!(
        "fleet of {} sites sustained {:.0} msgs/s over {} epochs; per-site re-solve p99: {}",
        fleet.sites,
        fleet.msgs_per_sec,
        fleet.epochs,
        fleet
            .per_site_p99_us
            .iter()
            .map(|(site, p99)| format!("{site} = {p99:.0} us"))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    measured(&format!(
        "coalescing turned {} burst frames into {} planning passes ({} cold + {} warm, \
         {} stale frames dropped): {:.1}x less solver work than per-report handling",
        coalescing.frames,
        coalescing.batched_solves + coalescing.warm_solves,
        coalescing.batched_solves,
        coalescing.warm_solves,
        coalescing.frames_coalesced,
        coalescing.solve_reduction,
    ));
    measured(&format!(
        "torn-store recovery in {:.0} ms ({} epochs replayed, {} rollback, byte-identical); \
         overload shed {} frames, rejected {} over-cap connections, deadlined {} staller",
        chaos.recovery_ms,
        chaos.replayed_epochs,
        chaos.snapshot_rollbacks,
        chaos.frames_shed,
        chaos.busy_rejections,
        chaos.read_timeouts,
    ));
}
