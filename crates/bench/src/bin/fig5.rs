//! Fig. 5 — WOLT's effect on the worst and best users.
//!
//! Paper result (one topology): WOLT's three poorest users lose only
//! ≈ 6 Mbit/s in total versus Greedy, while its three best users gain
//! ≈ 38 Mbit/s — a modest fairness hit buys a large efficiency win.

use wolt_bench::{columns, f2, header, measured, row, sort_by_metric};
use wolt_testbed::experiment::{best_worst_users, TestbedExperiment};

fn main() {
    header(
        "Fig 5 — per-user throughput for WOLT's worst-3 and best-3 users vs Greedy",
        "worst-3 lose ≈ 6 Mbit/s total; best-3 gain ≈ 38 Mbit/s total",
        "one topology from the 25-topology testbed experiment",
    );

    let comparisons = TestbedExperiment::default().run().expect("experiment runs");
    // The paper picks "a randomly chosen topology … results are very
    // similar with all our scenarios"; we pick the topology whose WOLT
    // gain over Greedy is closest to the experiment median.
    let mut gains: Vec<(usize, f64)> = comparisons
        .iter()
        .map(|c| (c.topology, c.wolt.aggregate - c.greedy.aggregate))
        .collect();
    if let Err(e) = sort_by_metric(&mut gains) {
        eprintln!("fig5: unusable gain ({e}); topology {}", gains[e.index].0);
        std::process::exit(1);
    }
    let median_topology = gains[gains.len() / 2].0;
    let chosen = &comparisons[median_topology];

    let bw = best_worst_users(chosen, 3);

    columns(&["group", "user_rank", "wolt_mbps", "greedy_mbps"]);
    for (rank, (w, g)) in bw.worst.iter().enumerate() {
        row(&["worst".to_string(), (rank + 1).to_string(), f2(*w), f2(*g)]);
    }
    for (rank, (w, g)) in bw.best.iter().enumerate() {
        row(&["best".to_string(), (rank + 1).to_string(), f2(*w), f2(*g)]);
    }

    let worst_delta: f64 = bw.worst.iter().map(|(w, g)| w - g).sum();
    let best_delta: f64 = bw.best.iter().map(|(w, g)| w - g).sum();
    measured(&format!(
        "topology {median_topology}: worst-3 users change by {worst_delta:+.1} Mbit/s total \
         (paper ≈ −6), best-3 by {best_delta:+.1} Mbit/s total (paper ≈ +38) — the \
         gain of the strong users dwarfs the loss of the weak ones"
    ));
}
