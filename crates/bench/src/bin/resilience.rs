//! Resilience extension — WOLT under mobility and extender outages, and
//! the re-association budget trade-off.
//!
//! No direct paper counterpart (the paper's dynamics only churn the user
//! population); this quantifies two DESIGN.md §6 extensions:
//!
//! 1. How gracefully does each policy degrade when extenders fail and
//!    users move?
//! 2. How much throughput does capping WOLT's re-associations per epoch
//!    cost (the Fig. 6c overhead, made controllable via `OnlineWolt`)?

use wolt_bench::{columns, f2, header, mean, measured, row};
use wolt_core::baselines::Rssi;
use wolt_core::{evaluate, AssociationPolicy, OnlineWolt, Wolt};
use wolt_sim::dynamics::DynamicsConfig;
use wolt_sim::experiment::{DynamicSimulation, OnlinePolicy};
use wolt_sim::perturb::{MobilityConfig, OutageConfig};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;

fn main() {
    header(
        "Resilience — outages, mobility, and bounded re-association",
        "(extension; no paper counterpart)",
        "enterprise plane, 36 users, 5 epochs x 10 runs; budgets on a 24-user snapshot",
    );

    // Part 1: dynamic policies under perturbation.
    let clean = DynamicSimulation::new(ScenarioConfig::enterprise(36), DynamicsConfig::default());
    let perturbed = clean
        .clone()
        .with_mobility(MobilityConfig { max_step: 6.0 })
        .with_outages(OutageConfig {
            probability: 0.15,
            max_concurrent: 3,
        });

    columns(&[
        "environment",
        "policy",
        "mean_aggregate_mbps",
        "mean_reassignments",
    ]);
    let mut degradation = Vec::new();
    for (label, sim) in [("clean", &clean), ("perturbed", &perturbed)] {
        for policy in [
            OnlinePolicy::Wolt,
            OnlinePolicy::GreedyOnline,
            OnlinePolicy::Rssi,
        ] {
            let mut aggregates = Vec::new();
            let mut reassignments = Vec::new();
            for seed in 0..10u64 {
                let records = sim.run(policy, 5, seed).expect("dynamic run");
                for r in &records {
                    aggregates.push(r.aggregate);
                    reassignments.push(r.reassignments as f64);
                }
            }
            if label == "perturbed" && policy == OnlinePolicy::Wolt {
                degradation.push(mean(&aggregates));
            }
            if label == "clean" && policy == OnlinePolicy::Wolt {
                degradation.push(mean(&aggregates));
            }
            row(&[
                label.to_string(),
                policy.name().to_string(),
                f2(mean(&aggregates)),
                f2(mean(&reassignments)),
            ]);
        }
    }

    // Part 2: OnlineWolt budget sweep on a static snapshot.
    let config = ScenarioConfig::enterprise(24);
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let scenario = Scenario::generate(&config, &mut rng).expect("scenario generates");
    let network = scenario.network().expect("network builds");
    let start = Rssi.associate(&network).expect("rssi runs");
    let full = evaluate(&network, &Wolt::new().associate(&network).expect("runs"))
        .expect("valid")
        .aggregate
        .value();

    columns(&[
        "move_budget",
        "aggregate_mbps",
        "fraction_of_full_wolt",
        "moves_used",
    ]);
    for budget in [0usize, 1, 2, 4, 8, 16, usize::MAX] {
        let online = OnlineWolt::new().with_move_budget(budget);
        let outcome = online.reconfigure(&network, &start).expect("reconfigures");
        row(&[
            if budget == usize::MAX {
                "inf".to_string()
            } else {
                budget.to_string()
            },
            f2(outcome.aggregate.value()),
            f2(outcome.aggregate.value() / full),
            outcome.moves.to_string(),
        ]);
    }

    let clean_mean = degradation[0].max(degradation[1]);
    let pert_mean = degradation[0].min(degradation[1]);
    measured(&format!(
        "WOLT keeps {:.0}% of its clean-environment aggregate under 15%-probability \
         outages + 6 m/epoch mobility; a handful of budgeted moves recovers most of \
         full WOLT's gain over RSSI",
        100.0 * pert_mean / clean_mean
    ));
}
