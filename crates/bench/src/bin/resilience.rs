//! Resilience extension — WOLT under mobility and extender outages, and
//! the re-association budget trade-off.
//!
//! No direct paper counterpart (the paper's dynamics only churn the user
//! population); this quantifies two DESIGN.md §6 extensions:
//!
//! 1. How gracefully does each policy degrade when extenders fail, users
//!    move, and PLC links flap to a fraction of their nominal capacity?
//! 2. How much throughput does capping WOLT's re-associations per epoch
//!    cost (the Fig. 6c overhead, made controllable via `OnlineWolt`)?
//! 3. How much does a lossy control plane cost the testbed rig — message
//!    drop sweeps with and without a crashed agent on the lab topology?

use std::time::Duration;

use wolt_bench::{columns, f2, header, mean, measured, row};
use wolt_core::baselines::Rssi;
use wolt_core::{evaluate, AssociationPolicy, OnlineWolt, Wolt};
use wolt_sim::dynamics::DynamicsConfig;
use wolt_sim::experiment::{DynamicSimulation, OnlinePolicy};
use wolt_sim::perturb::{LinkFlapConfig, MobilityConfig, OutageConfig};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;
use wolt_testbed::{
    run_faulty_session, ControllerPolicy, FaultPlan, LinkFaults, RigConfig, SessionEvent,
};

fn main() {
    header(
        "Resilience — outages, mobility, link flaps, and a lossy control plane",
        "(extension; no paper counterpart)",
        "enterprise plane, 36 users, 5 epochs x 10 runs; budgets on a 24-user snapshot; \
         fault sweep on the lab(7) rig",
    );

    // Part 1: dynamic policies under perturbation.
    let clean = DynamicSimulation::new(ScenarioConfig::enterprise(36), DynamicsConfig::default());
    let perturbed = clean
        .clone()
        .with_mobility(MobilityConfig { max_step: 6.0 })
        .with_outages(OutageConfig {
            probability: 0.15,
            max_concurrent: 3,
        });
    let flapping = clean.clone().with_link_flaps(LinkFlapConfig {
        probability: 0.25,
        degraded_fraction: 0.3,
        max_dwell: 1.0,
    });

    columns(&[
        "environment",
        "policy",
        "mean_aggregate_mbps",
        "mean_reassignments",
    ]);
    let mut degradation = Vec::new();
    for (label, sim) in [
        ("clean", &clean),
        ("perturbed", &perturbed),
        ("flapping", &flapping),
    ] {
        for policy in [
            OnlinePolicy::Wolt,
            OnlinePolicy::GreedyOnline,
            OnlinePolicy::Rssi,
        ] {
            let mut aggregates = Vec::new();
            let mut reassignments = Vec::new();
            for seed in 0..10u64 {
                let records = sim.run(policy, 5, seed).expect("dynamic run");
                for r in &records {
                    aggregates.push(r.aggregate);
                    reassignments.push(r.reassignments as f64);
                }
            }
            if label == "perturbed" && policy == OnlinePolicy::Wolt {
                degradation.push(mean(&aggregates));
            }
            if label == "clean" && policy == OnlinePolicy::Wolt {
                degradation.push(mean(&aggregates));
            }
            row(&[
                label.to_string(),
                policy.name().to_string(),
                f2(mean(&aggregates)),
                f2(mean(&reassignments)),
            ]);
        }
    }

    // Part 2: OnlineWolt budget sweep on a static snapshot.
    let config = ScenarioConfig::enterprise(24);
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let scenario = Scenario::generate(&config, &mut rng).expect("scenario generates");
    let network = scenario.network().expect("network builds");
    let start = Rssi.associate(&network).expect("rssi runs");
    let full = evaluate(&network, &Wolt::new().associate(&network).expect("runs"))
        .expect("valid")
        .aggregate
        .value();

    columns(&[
        "move_budget",
        "aggregate_mbps",
        "fraction_of_full_wolt",
        "moves_used",
    ]);
    for budget in [0usize, 1, 2, 4, 8, 16, usize::MAX] {
        let online = OnlineWolt::new().with_move_budget(budget);
        let outcome = online.reconfigure(&network, &start).expect("reconfigures");
        row(&[
            if budget == usize::MAX {
                "inf".to_string()
            } else {
                budget.to_string()
            },
            f2(outcome.aggregate.value()),
            f2(outcome.aggregate.value() / full),
            outcome.moves.to_string(),
        ]);
    }

    // Part 3: testbed control-plane fault sweep. Fixed lab topology and
    // plan seed; message drop rates with and without one crashed agent.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let lab = Scenario::generate(&ScenarioConfig::lab(7), &mut rng).expect("scenario generates");
    let events: Vec<SessionEvent> = (0..7).map(SessionEvent::Join).collect();
    let rig = RigConfig::new(ControllerPolicy::Wolt);
    let fault_free = run_faulty_session(&lab, &rig, &events, 0, &FaultPlan::none())
        .expect("fault-free session")
        .outcome
        .aggregate;

    columns(&[
        "drop_rate",
        "crashed_agents",
        "aggregate_mbps",
        "fraction_of_fault_free",
        "survivors",
        "declared_dead",
        "retries",
    ]);
    let mut worst_lossy_fraction: f64 = 1.0;
    for crash in [false, true] {
        for drop in [0.0, 0.1, 0.2, 0.3] {
            let faults = LinkFaults {
                drop,
                duplicate: 0.05,
                max_delay: Duration::from_millis(5),
            };
            let plan = FaultPlan {
                seed: 7,
                to_cc: faults,
                to_client: faults,
                crashed: if crash { vec![3] } else { vec![] },
                wedged: vec![],
            };
            let report = run_faulty_session(&lab, &rig, &events, 0, &plan)
                .expect("faulty session completes");
            let fraction = report.outcome.aggregate / fault_free;
            if !crash {
                worst_lossy_fraction = worst_lossy_fraction.min(fraction);
            }
            row(&[
                f2(drop),
                if crash { "1" } else { "0" }.to_string(),
                f2(report.outcome.aggregate),
                f2(fraction),
                report.survivors.len().to_string(),
                report.declared_dead.len().to_string(),
                report.retries.to_string(),
            ]);
        }
    }

    let clean_mean = degradation[0].max(degradation[1]);
    let pert_mean = degradation[0].min(degradation[1]);
    measured(&format!(
        "WOLT keeps {:.0}% of its clean-environment aggregate under 15%-probability \
         outages + 6 m/epoch mobility; a handful of budgeted moves recovers most of \
         full WOLT's gain over RSSI; with no crash the resilient rig holds ≥ {:.0}% \
         of the fault-free aggregate up to 30% message drop",
        100.0 * pert_mean / clean_mean,
        100.0 * worst_lossy_fraction
    ));
}
