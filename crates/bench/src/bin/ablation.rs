//! Ablations of WOLT's design choices (DESIGN.md §6).
//!
//! Three questions the paper's design raises but does not isolate:
//!
//! 1. **Airtime redistribution** — how much of the delivered throughput
//!    comes from re-using airtime that underloaded extenders release
//!    (Fig. 3c's +5 Mbit/s, generalized)?
//! 2. **Phase II solver** — does the fractional NLP (+ Theorem-3
//!    extraction) beat the pure marginal-gain greedy completion?
//! 3. **TDMA vs CSMA backhaul** — would a static equal-slot TDMA schedule
//!    (1901's other mode) change the aggregate?

use wolt_bench::{columns, f2, header, mean, measured, row};
use wolt_core::{
    evaluate, evaluate_without_redistribution, AssociationPolicy, Phase1Utility, Phase2Solver, Wolt,
};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;

use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;

fn main() {
    header(
        "Ablations — redistribution, Phase-II solver, TDMA backhaul",
        "(no direct paper counterpart; quantifies DESIGN.md §6 choices)",
        "enterprise plane, 15 extenders, 36 users, 20 seeds",
    );

    let config = ScenarioConfig::enterprise(36);
    let wolt_nlp = Wolt::new();
    let wolt_greedy2 = Wolt::new().with_phase2_solver(Phase2Solver::Greedy);
    let wolt_wifi_only = Wolt::new().with_phase1_utility(Phase1Utility::WifiOnly);
    let wolt_plc_only = Wolt::new().with_phase1_utility(Phase1Utility::PlcShareOnly);

    let mut with_redist = Vec::new();
    let mut without_redist = Vec::new();
    let mut nlp_values = Vec::new();
    let mut greedy2_values = Vec::new();
    let mut tdma_values = Vec::new();
    let mut wifi_only_values = Vec::new();
    let mut plc_only_values = Vec::new();

    for seed in 0..20u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let scenario = Scenario::generate(&config, &mut rng).expect("scenario generates");
        let network = scenario.network().expect("network builds");

        let assoc = wolt_nlp.associate(&network).expect("wolt runs");
        let full = evaluate(&network, &assoc).expect("valid");
        let naive = evaluate_without_redistribution(&network, &assoc).expect("valid");
        with_redist.push(full.aggregate.value());
        without_redist.push(naive.aggregate.value());
        nlp_values.push(full.aggregate.value());

        let assoc_g2 = wolt_greedy2.associate(&network).expect("wolt-greedy2 runs");
        greedy2_values.push(
            evaluate(&network, &assoc_g2)
                .expect("valid")
                .aggregate
                .value(),
        );

        let assoc_wifi = wolt_wifi_only.associate(&network).expect("wifi-only runs");
        wifi_only_values.push(
            evaluate(&network, &assoc_wifi)
                .expect("valid")
                .aggregate
                .value(),
        );
        let assoc_plc = wolt_plc_only.associate(&network).expect("plc-only runs");
        plc_only_values.push(
            evaluate(&network, &assoc_plc)
                .expect("valid")
                .aggregate
                .value(),
        );

        // TDMA: equal slots regardless of demand — unused slots are wasted
        // rather than redistributed. Equivalent to the no-redistribution
        // evaluation, but framed as the 1901 TDMA mode.
        let tdma = wolt_plc::tdma::TdmaSchedule::build(
            &vec![1.0; network.extenders()],
            network.extenders() as u32 * 10,
        )
        .expect("valid schedule");
        let caps: Vec<_> = (0..network.extenders())
            .map(|j| network.capacity(j))
            .collect();
        let tdma_caps = tdma.throughputs(&caps).expect("valid capacities");
        // Cell throughput = min(wifi demand, TDMA grant).
        let tdma_total: f64 = (0..network.extenders())
            .map(|j| full.wifi_demand[j].min(tdma_caps[j]).value())
            .sum();
        tdma_values.push(tdma_total);
    }

    // The utility ablation only bites when the PLC side binds; repeat it at
    // the lab scale (3 extenders, WiFi rates up to ~42 Mbit/s vs c/3
    // shares), where min(c_j/|A|, r_ij) differs from r_ij.
    let lab = ScenarioConfig::lab(7);
    let mut lab_paper = Vec::new();
    let mut lab_wifi_only = Vec::new();
    for seed in 0..20u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(1000 + seed);
        let scenario = Scenario::generate(&lab, &mut rng).expect("scenario generates");
        let network = scenario.network().expect("network builds");
        let paper = wolt_nlp.associate(&network).expect("runs");
        lab_paper.push(evaluate(&network, &paper).expect("valid").aggregate.value());
        let blind = wolt_wifi_only.associate(&network).expect("runs");
        lab_wifi_only.push(evaluate(&network, &blind).expect("valid").aggregate.value());
    }

    columns(&["ablation", "variant", "mean_aggregate_mbps"]);
    row(&[
        "redistribution".into(),
        "on (CSMA observed)".into(),
        f2(mean(&with_redist)),
    ]);
    row(&[
        "redistribution".into(),
        "off (plain c_j/A)".into(),
        f2(mean(&without_redist)),
    ]);
    row(&[
        "phase2".into(),
        "NLP + extraction".into(),
        f2(mean(&nlp_values)),
    ]);
    row(&[
        "phase2".into(),
        "marginal-gain greedy".into(),
        f2(mean(&greedy2_values)),
    ]);
    row(&[
        "backhaul".into(),
        "CSMA time-fair".into(),
        f2(mean(&with_redist)),
    ]);
    row(&[
        "backhaul".into(),
        "TDMA equal slots".into(),
        f2(mean(&tdma_values)),
    ]);
    row(&[
        "phase1 utility".into(),
        "paper min(c/A, r)".into(),
        f2(mean(&nlp_values)),
    ]);
    row(&[
        "phase1 utility".into(),
        "wifi-only r".into(),
        f2(mean(&wifi_only_values)),
    ]);
    row(&[
        "phase1 utility".into(),
        "plc-share-only c/A".into(),
        f2(mean(&plc_only_values)),
    ]);
    row(&[
        "phase1 utility (lab)".into(),
        "paper min(c/A, r)".into(),
        f2(mean(&lab_paper)),
    ]);
    row(&[
        "phase1 utility (lab)".into(),
        "wifi-only r".into(),
        f2(mean(&lab_wifi_only)),
    ]);

    measured(&format!(
        "redistribution contributes {:+.1}% aggregate; NLP phase 2 is {:+.2}% vs greedy \
         completion; static TDMA costs {:.1}% vs CSMA redistribution; the paper's \
         bottleneck-aware utility is {:+.1}% vs WiFi-only and {:+.1}% vs PLC-share-only \
         at enterprise scale and {:+.1}% vs WiFi-only at lab scale — on random \
         topologies the min() cap rarely flips the matching (Phase 2's polish washes \
         out most residue); adversarial bottleneck-heterogeneous instances where it \
         matters are exercised in unit tests (wifi_only_utility_can_mislead)",
        100.0 * (mean(&with_redist) / mean(&without_redist) - 1.0),
        100.0 * (mean(&nlp_values) / mean(&greedy2_values) - 1.0),
        100.0 * (1.0 - mean(&tdma_values) / mean(&with_redist)),
        100.0 * (mean(&nlp_values) / mean(&wifi_only_values) - 1.0),
        100.0 * (mean(&nlp_values) / mean(&plc_only_values) - 1.0),
        100.0 * (mean(&lab_paper) / mean(&lab_wifi_only) - 1.0),
    ));
}
