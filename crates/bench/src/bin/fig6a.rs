//! Fig. 6a — CDF of aggregate throughput across 100 simulation trials.
//!
//! Paper setup: the enterprise plane (100 m × 100 m, 15 extenders),
//! |U| = 36 users, 100 trials; WOLT outperforms Greedy in every trial
//! with a 2.5× average improvement. We additionally report the selfish
//! greedy variant (§III-B) and RSSI.

use wolt_bench::{columns, f2, header, mean, measured, row};
use wolt_core::baselines::{Greedy, Rssi, SelfishGreedy};
use wolt_core::{AssociationPolicy, Wolt};
use wolt_sim::experiment::run_static_trials;
use wolt_sim::metrics::percentile;
use wolt_sim::scenario::ScenarioConfig;

fn main() {
    header(
        "Fig 6a — CDF of aggregate throughput over 100 trials",
        "WOLT beats Greedy in all trials; average improvement ≈ 2.5x",
        "enterprise plane, 15 extenders, 36 users, 100 seeds",
    );

    let config = ScenarioConfig::enterprise(36);
    let wolt = Wolt::new();
    let greedy = Greedy::new();
    let selfish = SelfishGreedy::new();
    let policies: Vec<&dyn AssociationPolicy> = vec![&wolt, &greedy, &selfish, &Rssi];
    let seeds: Vec<u64> = (0..100).collect();
    let records = run_static_trials(&config, &policies, &seeds).expect("trials run");

    let values = |name: &str| -> Vec<f64> {
        records
            .iter()
            .filter(|r| r.policy == name)
            .map(|r| r.aggregate)
            .collect()
    };
    let wolt_v = values("WOLT");
    let greedy_v = values("Greedy");
    let selfish_v = values("SelfishGreedy");
    let rssi_v = values("RSSI");

    columns(&[
        "percentile",
        "wolt_mbps",
        "greedy_mbps",
        "selfish_greedy_mbps",
        "rssi_mbps",
    ]);
    for p in [0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95] {
        row(&[
            f2(p),
            f2(percentile(&wolt_v, p).expect("non-empty")),
            f2(percentile(&greedy_v, p).expect("non-empty")),
            f2(percentile(&selfish_v, p).expect("non-empty")),
            f2(percentile(&rssi_v, p).expect("non-empty")),
        ]);
    }

    let wins = wolt_v.iter().zip(&greedy_v).filter(|(w, g)| w >= g).count();
    measured(&format!(
        "mean WOLT = {:.1}, Greedy = {:.1}, SelfishGreedy = {:.1}, RSSI = {:.1} Mbit/s; \
         WOLT ≥ Greedy in {wins}/100 trials; improvement ratios: {:.2}x vs Greedy, \
         {:.2}x vs SelfishGreedy, {:.2}x vs RSSI (paper reports 2.5x vs its greedy)",
        mean(&wolt_v),
        mean(&greedy_v),
        mean(&selfish_v),
        mean(&rssi_v),
        mean(&wolt_v) / mean(&greedy_v),
        mean(&wolt_v) / mean(&selfish_v),
        mean(&wolt_v) / mean(&rssi_v),
    ));
}
