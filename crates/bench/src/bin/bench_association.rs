//! Micro-benchmark: end-to-end association policies on enterprise
//! networks of growing size (WOLT vs the baselines).

use wolt_bench::harness::{black_box, Group};
use wolt_core::baselines::{Greedy, Rssi};
use wolt_core::{AssociationPolicy, Network, Wolt};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};

fn enterprise_network(users: usize) -> Network {
    let config = ScenarioConfig::enterprise(users);
    let mut rng = ChaCha8Rng::seed_from_u64(users as u64);
    Scenario::generate(&config, &mut rng)
        .expect("scenario generates")
        .network()
        .expect("network builds")
}

fn main() {
    let mut group = Group::new("association");
    for users in [12usize, 36, 72, 124] {
        let network = enterprise_network(users);
        let wolt = Wolt::new();
        group.bench(&format!("wolt/{users}"), || {
            wolt.associate(black_box(&network)).expect("wolt runs")
        });
        let greedy = Greedy::new();
        group.bench(&format!("greedy/{users}"), || {
            greedy.associate(black_box(&network)).expect("greedy runs")
        });
        group.bench(&format!("rssi/{users}"), || {
            Rssi.associate(black_box(&network)).expect("rssi runs")
        });
    }
}
