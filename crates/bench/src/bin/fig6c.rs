//! Fig. 6c — number of user re-assignments per epoch.
//!
//! Paper result: WOLT re-assigns up to twice the number of arriving users
//! per epoch (≈ one existing user swapped per arrival) — modest overhead
//! for the throughput gains.

use wolt_bench::{columns, f2, header, measured, row};
use wolt_sim::dynamics::DynamicsConfig;
use wolt_sim::experiment::{DynamicSimulation, OnlinePolicy};
use wolt_sim::scenario::ScenarioConfig;

fn main() {
    header(
        "Fig 6c — WOLT re-assignments per epoch",
        "re-assignments stay below ≈ 2× the arrivals of the epoch",
        "enterprise plane, Poisson λ=3 / μ=1, 6 epochs, mean of 10 runs",
    );

    let sim = DynamicSimulation::new(ScenarioConfig::enterprise(36), DynamicsConfig::default());
    let epochs = 6;
    let runs: Vec<u64> = (0..10).collect();

    let mut arrivals = vec![0.0f64; epochs];
    let mut reassignments = vec![0.0f64; epochs];
    for &seed in &runs {
        let records = sim
            .run(OnlinePolicy::Wolt, epochs, seed)
            .expect("dynamic run");
        for (e, r) in records.iter().enumerate() {
            arrivals[e] += r.arrivals as f64 / runs.len() as f64;
            reassignments[e] += r.reassignments as f64 / runs.len() as f64;
        }
    }

    columns(&["epoch", "mean_arrivals", "mean_reassignments", "ratio"]);
    let mut worst_ratio: f64 = 0.0;
    for e in 1..epochs {
        // Epoch 1 has no churn by construction.
        let ratio = reassignments[e] / arrivals[e].max(1.0);
        worst_ratio = worst_ratio.max(ratio);
        row(&[
            (e + 1).to_string(),
            f2(arrivals[e]),
            f2(reassignments[e]),
            f2(ratio),
        ]);
    }

    measured(&format!(
        "re-assignments per arriving user peak at {worst_ratio:.2} \
         (paper: up to ≈ 2) — WOLT's reconfiguration overhead is bounded"
    ));
}
