//! Fig. 4c — validating simulator fidelity against the testbed.
//!
//! Paper setup: mirror a testbed topology inside the simulator (same
//! channel qualities, 3 extenders, 7 users) and compare the two. We run
//! the identical scenario through (a) the threaded controller rig (the
//! "testbed") and (b) the offline policies on the same network (the
//! "simulation"), expecting near-identical aggregates.

use wolt_bench::{columns, f2, header, measured, row};
use wolt_core::baselines::{Greedy, Rssi};
use wolt_core::{evaluate, AssociationPolicy, Wolt};
use wolt_plc::capacity::CapacityEstimator;
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;
use wolt_testbed::{run_rig, ControllerPolicy, RigConfig};

fn main() {
    header(
        "Fig 4c — simulation vs testbed on an identical topology",
        "simulation results are 'very consistent' with the testbed",
        "one seeded lab topology; threaded rig vs offline policies, zero estimation noise",
    );

    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let scenario =
        Scenario::generate(&ScenarioConfig::lab(7), &mut rng).expect("scenario generates");
    let network = scenario.network().expect("network builds");

    // Zero-noise estimation so the only difference is the code path.
    let noiseless = CapacityEstimator {
        rounds: 1,
        noise_sigma: 0.0,
    };

    columns(&["policy", "testbed_mbps", "simulation_mbps", "gap_percent"]);
    let mut worst_gap: f64 = 0.0;

    let wolt = Wolt::new();
    let greedy = Greedy::new();
    let cases: [(ControllerPolicy, &dyn AssociationPolicy); 3] = [
        (ControllerPolicy::Wolt, &wolt),
        (ControllerPolicy::Greedy, &greedy),
        (ControllerPolicy::Rssi, &Rssi),
    ];
    for (rig_policy, offline) in cases {
        let rig_outcome = run_rig(
            &scenario,
            &RigConfig {
                estimator: noiseless,
                ..RigConfig::new(rig_policy)
            },
            0,
        )
        .expect("rig runs");
        let offline_assoc = offline.associate(&network).expect("policy runs");
        let offline_eval = evaluate(&network, &offline_assoc).expect("valid association");
        let sim = offline_eval.aggregate.value();
        let gap = 100.0 * (rig_outcome.aggregate - sim).abs() / sim;
        worst_gap = worst_gap.max(gap);
        row(&[
            rig_policy.name().to_string(),
            f2(rig_outcome.aggregate),
            f2(sim),
            f2(gap),
        ]);
    }

    measured(&format!(
        "testbed rig and pure simulation agree within {worst_gap:.2}% on every \
         policy — the fidelity check the paper's Fig. 4c makes"
    ));
}
