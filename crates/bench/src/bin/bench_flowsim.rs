//! Micro-benchmark: the flow-level queueing simulator (cost per simulated
//! second, by network size).

use wolt_bench::harness::{black_box, Group};
use wolt_core::baselines::Rssi;
use wolt_core::{Association, AssociationPolicy, Network};
use wolt_sim::flowsim::{simulate_flows, FlowSimConfig};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};
use wolt_units::Seconds;

fn network_and_assoc(users: usize) -> (Network, Association) {
    let config = ScenarioConfig::enterprise(users);
    let mut rng = ChaCha8Rng::seed_from_u64(users as u64);
    let network = Scenario::generate(&config, &mut rng)
        .expect("scenario generates")
        .network()
        .expect("network builds");
    let assoc = Rssi.associate(&network).expect("rssi runs");
    (network, assoc)
}

fn main() {
    let mut group = Group::new("flowsim");
    let config = FlowSimConfig {
        duration: Seconds::new(1.0),
        ..FlowSimConfig::default()
    };
    for users in [7usize, 36, 72] {
        let (network, assoc) = network_and_assoc(users);
        group.bench(&format!("one_second/{users}"), || {
            simulate_flows(black_box(&network), black_box(&assoc), &config).expect("runs")
        });
    }
}
