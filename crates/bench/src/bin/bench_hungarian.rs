//! Micro-benchmark: Hungarian assignment scaling (the paper's O(|A|³)
//! Phase-I complexity claim).

use wolt_bench::harness::{black_box, Group};
use wolt_opt::{max_weight_assignment, Matrix};
use wolt_support::rng::{ChaCha8Rng, Rng, SeedableRng};

fn main() {
    let mut group = Group::new("hungarian");
    for n in [5usize, 10, 20, 40, 80] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let matrix = Matrix::from_fn(n, n, |_, _| rng.gen_range(0.0..100.0)).expect("non-empty");
        group.bench(&format!("square/{n}"), || {
            max_weight_assignment(black_box(&matrix))
        });
    }
    // Rectangular: many users, few extenders (the WOLT Phase-I shape).
    for users in [30usize, 120] {
        let mut rng = ChaCha8Rng::seed_from_u64(users as u64);
        let matrix =
            Matrix::from_fn(users, 15, |_, _| rng.gen_range(0.0..100.0)).expect("non-empty");
        group.bench(&format!("users_x_15ext/{users}"), || {
            max_weight_assignment(black_box(&matrix))
        });
    }
}
