//! Fig. 4b — per-user effects of WOLT on the testbed.
//!
//! Paper result: compared to Greedy, 35% of users do better under WOLT
//! (65% worse); compared to RSSI, 55% do better (45% worse). WOLT
//! maximizes the *network* objective, so individual users can lose.

use wolt_bench::{columns, f2, header, measured, row};
use wolt_testbed::experiment::{per_user_win_loss, TestbedExperiment};

fn main() {
    header(
        "Fig 4b — fraction of users better/worse off under WOLT",
        "vs Greedy: 35% better / 65% worse; vs RSSI: 55% better / 45% worse",
        "same 25-topology testbed experiment as Fig 4a",
    );

    let comparisons = TestbedExperiment::default().run().expect("experiment runs");
    let vs_greedy = per_user_win_loss(&comparisons, |c| &c.greedy);
    let vs_rssi = per_user_win_loss(&comparisons, |c| &c.rssi);

    columns(&["baseline", "better", "worse", "unchanged"]);
    row(&[
        "Greedy".to_string(),
        f2(vs_greedy.better),
        f2(vs_greedy.worse),
        f2(vs_greedy.unchanged),
    ]);
    row(&[
        "RSSI".to_string(),
        f2(vs_rssi.better),
        f2(vs_rssi.worse),
        f2(vs_rssi.unchanged),
    ]);

    measured(&format!(
        "vs Greedy {:.0}% better / {:.0}% worse (paper 35/65); \
         vs RSSI {:.0}% better / {:.0}% worse (paper 55/45)",
        100.0 * vs_greedy.better,
        100.0 * vs_greedy.worse,
        100.0 * vs_rssi.better,
        100.0 * vs_rssi.worse,
    ));
}
