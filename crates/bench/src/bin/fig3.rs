//! Fig. 3 — the association case study (exact-number regression).
//!
//! Paper setup: 2 extenders (PLC 60 / 20 Mbit/s), 2 users with WiFi rates
//! [[15, 10], [40, 20]]. RSSI lands at 22 Mbit/s, Greedy at 30 (15 + 15
//! after airtime redistribution), the brute-force optimum at 40. WOLT
//! recovers the optimum.

use wolt_bench::{columns, f2, header, measured, row};
use wolt_core::baselines::{Greedy, Optimal, Rssi, SelfishGreedy};
use wolt_core::{evaluate, AssociationPolicy, Network, Wolt};

fn main() {
    header(
        "Fig 3 — RSSI vs Greedy vs Optimal on the case-study topology",
        "RSSI = 22, Greedy = 30, Optimal = 40 Mbit/s (exact)",
        "c = (60, 20); r = [[15, 10], [40, 20]]",
    );

    let net = Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]])
        .expect("valid case-study network");

    columns(&[
        "policy",
        "user1_extender",
        "user2_extender",
        "user1_mbps",
        "user2_mbps",
        "aggregate_mbps",
    ]);

    let wolt = Wolt::new();
    let greedy = Greedy::new();
    let selfish = SelfishGreedy::new();
    let optimal = Optimal::new();
    let policies: [&dyn AssociationPolicy; 5] = [&Rssi, &greedy, &selfish, &optimal, &wolt];
    let mut results = Vec::new();
    for policy in policies {
        let assoc = policy.associate(&net).expect("feasible case study");
        let eval = evaluate(&net, &assoc).expect("valid association");
        results.push((policy.name().to_string(), eval.aggregate.value()));
        row(&[
            policy.name().to_string(),
            format!("E{}", assoc.target(0).expect("complete") + 1),
            format!("E{}", assoc.target(1).expect("complete") + 1),
            f2(eval.per_user[0].value()),
            f2(eval.per_user[1].value()),
            f2(eval.aggregate.value()),
        ]);
    }

    let get = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .expect("policy ran")
    };
    measured(&format!(
        "RSSI = {:.2} (paper 22), Greedy = {:.2} (paper 30), Optimal = {:.2} (paper 40), \
         WOLT = {:.2} (recovers the optimum)",
        get("RSSI"),
        get("Greedy"),
        get("Optimal"),
        get("WOLT"),
    ));
}
