//! Shared helpers for the figure-regeneration binaries.
//!
//! Every table and figure of the WOLT paper has a binary under
//! `src/bin/` that regenerates it (`cargo run -p wolt-bench --bin figXY`).
//! Binaries print machine-readable CSV rows followed by a
//! `paper:`/`measured:` summary so `EXPERIMENTS.md` can record the
//! comparison. These helpers keep the output format consistent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

/// Prints a figure header: id, paper claim, and our setup in one place.
pub fn header(figure: &str, claim: &str, setup: &str) {
    println!("# {figure}");
    println!("# paper: {claim}");
    println!("# setup: {setup}");
}

/// Prints one CSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join(","));
}

/// Prints a CSV header row.
pub fn columns(names: &[&str]) {
    println!("{}", names.join(","));
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Arithmetic mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Prints the closing `measured:` summary line.
pub fn measured(summary: &str) {
    println!("# measured: {summary}");
}

/// A `(key, metric)` slice handed to [`sort_by_metric`] contained a NaN
/// metric at `index` — the caller's spec or model produced an unusable
/// value, which deserves a diagnostic, not a comparator panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NanMetric {
    /// Position of the offending entry in the input slice.
    pub index: usize,
}

impl std::fmt::Display for NanMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metric at index {} is NaN", self.index)
    }
}

impl std::error::Error for NanMetric {}

/// Sorts `(key, metric)` pairs ascending by metric, using the
/// workspace's `f64::total_cmp` convention after rejecting NaN with a
/// typed error (the first offender's index). Stable, so equal metrics —
/// including `-0.0` vs `0.0`, which `total_cmp` distinguishes but keeps
/// adjacent — preserve their input order deterministically.
///
/// # Errors
///
/// [`NanMetric`] when any metric is NaN; the slice is left unsorted.
pub fn sort_by_metric<T>(items: &mut [(T, f64)]) -> Result<(), NanMetric> {
    if let Some(index) = items.iter().position(|(_, m)| m.is_nan()) {
        return Err(NanMetric { index });
    }
    items.sort_by(|a, b| a.1.total_cmp(&b.1));
    Ok(())
}

/// Nearest-rank percentile (`p` in percent, 0–100) over ascending-sorted
/// samples.
///
/// Shares its edge-case contract with
/// `wolt_support::obs::HistogramSnapshot::quantile`: `None` for an empty
/// slice, `NaN` treated as 0, `p` clamped into [0, 100], and with one
/// sample (or all-equal samples) every percentile is that sample.
pub fn percentile_sorted<T: Copy>(sorted: &[T], p: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let q = if p.is_nan() {
        0.0
    } else {
        (p / 100.0).clamp(0.0, 1.0)
    };
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_rejects_empty() {
        let _ = mean(&[]);
    }

    #[test]
    fn f2_formats() {
        assert_eq!(f2(1.2345), "1.23");
    }

    // The percentile edge cases below are named after — and must stay in
    // lockstep with — the obs histogram quantile tests in
    // `wolt_support::obs`.

    #[test]
    fn quantile_zero_samples() {
        assert_eq!(percentile_sorted::<u64>(&[], 50.0), None);
    }

    #[test]
    fn quantile_single_sample() {
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_sorted(&[7u64], p), Some(7));
        }
    }

    #[test]
    fn quantile_all_equal_samples() {
        let samples = [3u64; 10];
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_sorted(&samples, p), Some(3));
        }
    }

    #[test]
    fn sort_by_metric_orders_ascending() {
        let mut items = vec![("c", 3.0), ("a", 1.0), ("b", 2.0)];
        sort_by_metric(&mut items).unwrap();
        assert_eq!(items, vec![("a", 1.0), ("b", 2.0), ("c", 3.0)]);
    }

    #[test]
    fn sort_by_metric_rejects_nan_with_index() {
        let mut items = vec![("a", 1.0), ("bad", f64::NAN), ("c", 3.0)];
        assert_eq!(sort_by_metric(&mut items), Err(NanMetric { index: 1 }));
        // The slice is untouched on rejection.
        assert_eq!(items[0], ("a", 1.0));
        assert_eq!(items[2], ("c", 3.0));
        assert_eq!(
            NanMetric { index: 1 }.to_string(),
            "metric at index 1 is NaN"
        );
    }

    #[test]
    fn sort_by_metric_totally_orders_edge_floats() {
        // total_cmp puts -0.0 before 0.0 and handles infinities without
        // a comparator panic; equal keys keep input order (stable sort).
        let mut items = vec![
            ("pinf", f64::INFINITY),
            ("zero", 0.0),
            ("first", 1.0),
            ("negzero", -0.0),
            ("second", 1.0),
            ("ninf", f64::NEG_INFINITY),
        ];
        sort_by_metric(&mut items).unwrap();
        let keys: Vec<&str> = items.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            keys,
            vec!["ninf", "negzero", "zero", "first", "second", "pinf"]
        );
    }

    #[test]
    fn quantile_nearest_rank() {
        let samples = [10u64, 20, 30, 40];
        assert_eq!(percentile_sorted(&samples, 50.0), Some(20));
        assert_eq!(percentile_sorted(&samples, 75.0), Some(30));
        assert_eq!(percentile_sorted(&samples, 100.0), Some(40));
        // Out-of-range and NaN inputs clamp instead of panicking.
        assert_eq!(percentile_sorted(&samples, -5.0), Some(10));
        assert_eq!(percentile_sorted(&samples, 250.0), Some(40));
        assert_eq!(percentile_sorted(&samples, f64::NAN), Some(10));
    }
}
