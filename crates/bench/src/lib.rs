//! Shared helpers for the figure-regeneration binaries.
//!
//! Every table and figure of the WOLT paper has a binary under
//! `src/bin/` that regenerates it (`cargo run -p wolt-bench --bin figXY`).
//! Binaries print machine-readable CSV rows followed by a
//! `paper:`/`measured:` summary so `EXPERIMENTS.md` can record the
//! comparison. These helpers keep the output format consistent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

/// Prints a figure header: id, paper claim, and our setup in one place.
pub fn header(figure: &str, claim: &str, setup: &str) {
    println!("# {figure}");
    println!("# paper: {claim}");
    println!("# setup: {setup}");
}

/// Prints one CSV row.
pub fn row(cells: &[String]) {
    println!("{}", cells.join(","));
}

/// Prints a CSV header row.
pub fn columns(names: &[&str]) {
    println!("{}", names.join(","));
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Arithmetic mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Prints the closing `measured:` summary line.
pub fn measured(summary: &str) {
    println!("# measured: {summary}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_works() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_rejects_empty() {
        let _ = mean(&[]);
    }

    #[test]
    fn f2_formats() {
        assert_eq!(f2(1.2345), "1.23");
    }
}
