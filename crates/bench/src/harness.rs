//! Minimal wall-clock micro-benchmark harness.
//!
//! The micro-benchmarks live under `src/bin/bench_*.rs` as plain binaries
//! (`cargo run --release -p wolt-bench --bin bench_hungarian`) so the
//! workspace builds with zero external crates. Each benchmark warms up
//! briefly, calibrates an iteration count to a fixed measurement window,
//! and prints one CSV row: `group/id,iters,ns_per_iter`.
//!
//! The numbers are indicative, not statistically rigorous — for relative
//! comparisons between in-tree algorithms (Hungarian vs auction, NLP vs
//! greedy completion), not for publication.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
/// Warm-up time before calibration.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// A named group of benchmarks, mirroring criterion's `benchmark_group`.
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group and prints the CSV header once.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("# group: {name}");
        println!("benchmark,iters,ns_per_iter");
        Self { name }
    }

    /// Times `f` and prints one row. The closure's return value is passed
    /// through [`black_box`] so the work is not optimized away.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        // Warm-up: fill caches, trigger lazy init.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_WINDOW {
            black_box(f());
            warm_iters += 1;
        }
        // Calibrate the iteration count from the warm-up rate, then run
        // one timed batch.
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        let iters = (MEASURE_WINDOW.as_nanos() / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.report(id, iters, elapsed);
    }

    /// Times `routine` on a fresh `setup()` value per iteration, excluding
    /// the setup cost (criterion's `iter_batched`).
    pub fn bench_batched<S, T>(
        &mut self,
        id: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_WINDOW {
            black_box(routine(setup()));
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters);
        let iters = (MEASURE_WINDOW.as_nanos() / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        let mut busy = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            busy += start.elapsed();
        }
        self.report(id, iters, busy);
    }

    fn report(&self, id: &str, iters: u64, elapsed: Duration) {
        let ns = elapsed.as_nanos() as f64 / iters as f64;
        println!("{}/{id},{iters},{ns:.1}", self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut calls = 0u64;
        Group::new("test").bench("noop", || calls += 1);
        assert!(calls > 0);
    }

    #[test]
    fn bench_batched_runs_setup_per_iteration() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        Group::new("test").bench_batched(
            "batched",
            || {
                setups += 1;
                setups
            },
            |_| runs += 1,
        );
        assert_eq!(setups, runs);
    }
}
