//! Criterion bench: the flow-level queueing simulator (cost per simulated
//! second, by network size).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wolt_core::baselines::Rssi;
use wolt_core::{Association, AssociationPolicy, Network};
use wolt_sim::flowsim::{simulate_flows, FlowSimConfig};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_units::Seconds;

fn network_and_assoc(users: usize) -> (Network, Association) {
    let config = ScenarioConfig::enterprise(users);
    let mut rng = ChaCha8Rng::seed_from_u64(users as u64);
    let network = Scenario::generate(&config, &mut rng)
        .expect("scenario generates")
        .network()
        .expect("network builds");
    let assoc = Rssi.associate(&network).expect("rssi runs");
    (network, assoc)
}

fn bench_flowsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("flowsim");
    group.sample_size(10);
    let config = FlowSimConfig {
        duration: Seconds::new(1.0),
        ..FlowSimConfig::default()
    };
    for users in [7usize, 36, 72] {
        let (network, assoc) = network_and_assoc(users);
        group.bench_with_input(
            BenchmarkId::new("one_second", users),
            &(network, assoc),
            |b, (net, a)| {
                b.iter(|| simulate_flows(black_box(net), black_box(a), &config).expect("runs"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flowsim);
criterion_main!(benches);
