//! Criterion bench: the slotted MAC micro-simulators (cost per simulated
//! second, by station count).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wolt_plc::mac1901::{simulate_1901, Mac1901Config};
use wolt_units::{Mbps, Seconds};
use wolt_wifi::dcf::{simulate_dcf, DcfConfig};

fn bench_macs(c: &mut Criterion) {
    let mut group = c.benchmark_group("mac_sims");
    group.sample_size(10);
    for n in [2usize, 8] {
        let wifi_rates: Vec<Mbps> = (0..n).map(|i| Mbps::new(6.0 + 6.0 * i as f64)).collect();
        let dcf_cfg = DcfConfig {
            duration: Seconds::new(0.5),
            ..DcfConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("dcf_half_second", n), &wifi_rates, |b, r| {
            b.iter(|| simulate_dcf(black_box(r), &dcf_cfg, 7).expect("valid sim"))
        });

        let plc_rates: Vec<Mbps> = (0..n).map(|i| Mbps::new(60.0 + 20.0 * i as f64)).collect();
        let mac_cfg = Mac1901Config {
            duration: Seconds::new(0.5),
            ..Mac1901Config::default()
        };
        group.bench_with_input(
            BenchmarkId::new("mac1901_half_second", n),
            &plc_rates,
            |b, r| b.iter(|| simulate_1901(black_box(r), &mac_cfg, 7).expect("valid sim")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_macs);
criterion_main!(benches);
