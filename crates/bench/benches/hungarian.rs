//! Criterion bench: Hungarian assignment scaling (the paper's O(|A|³)
//! Phase-I complexity claim).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wolt_opt::{max_weight_assignment, Matrix};

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [5usize, 10, 20, 40, 80] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let matrix = Matrix::from_fn(n, n, |_, _| rng.gen_range(0.0..100.0)).expect("non-empty");
        group.bench_with_input(BenchmarkId::new("square", n), &matrix, |b, m| {
            b.iter(|| max_weight_assignment(black_box(m)))
        });
    }
    // Rectangular: many users, few extenders (the WOLT Phase-I shape).
    for users in [30usize, 120] {
        let mut rng = ChaCha8Rng::seed_from_u64(users as u64);
        let matrix =
            Matrix::from_fn(users, 15, |_, _| rng.gen_range(0.0..100.0)).expect("non-empty");
        group.bench_with_input(
            BenchmarkId::new("users_x_15ext", users),
            &matrix,
            |b, m| b.iter(|| max_weight_assignment(black_box(m))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hungarian);
criterion_main!(benches);
