//! Criterion bench: end-to-end association policies on enterprise
//! networks of growing size (WOLT vs the baselines).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wolt_core::baselines::{Greedy, Rssi};
use wolt_core::{AssociationPolicy, Network, Wolt};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;

fn enterprise_network(users: usize) -> Network {
    let config = ScenarioConfig::enterprise(users);
    let mut rng = ChaCha8Rng::seed_from_u64(users as u64);
    Scenario::generate(&config, &mut rng)
        .expect("scenario generates")
        .network()
        .expect("network builds")
}

fn bench_association(c: &mut Criterion) {
    let mut group = c.benchmark_group("association");
    group.sample_size(10);
    for users in [12usize, 36, 72, 124] {
        let network = enterprise_network(users);
        group.bench_with_input(BenchmarkId::new("wolt", users), &network, |b, net| {
            let wolt = Wolt::new();
            b.iter(|| wolt.associate(black_box(net)).expect("wolt runs"))
        });
        group.bench_with_input(BenchmarkId::new("greedy", users), &network, |b, net| {
            let greedy = Greedy::new();
            b.iter(|| greedy.associate(black_box(net)).expect("greedy runs"))
        });
        group.bench_with_input(BenchmarkId::new("rssi", users), &network, |b, net| {
            b.iter(|| Rssi.associate(black_box(net)).expect("rssi runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_association);
criterion_main!(benches);
