//! The generational snapshot store: crash-safe persistence for
//! [`DaemonSnapshot`]s.
//!
//! The first daemon persisted one `snapshot.json` via write-temp-then
//! -rename, and treated any corruption as fatal. That contract is wrong
//! for the crashes the daemon does not choose: a power cut or SIGKILL
//! mid-write leaves a torn file, and refusing to start turns a recoverable
//! hiccup into an outage at the paper's single most availability-critical
//! component (the Central Controller). This store makes corruption
//! *degraded-but-correct* instead:
//!
//! * Every save writes a **new** file, `snapshot.<gen>.json`, and never
//!   touches older generations — so a crash at any instant can tear at
//!   most the newest file.
//! * Each file starts with a WSNP header — magic, site-id length
//!   (u32 BE), site-id bytes — stamping *whose* snapshots these are, and
//!   ends in a 12-byte trailer — magic `WSNP`, payload length, and
//!   CRC-32 (both big-endian) — so truncation, bit rot, and partial
//!   writes are detected at load time instead of being parsed into
//!   silently-wrong controller state. The CRC covers header and payload
//!   alike, so damage *anywhere* reads as damage (a rollback), while an
//!   intact file stamped for a different site is the distinct, fatal
//!   [`SnapshotCorrupt::WrongSite`]: a mis-wired fleet root must never
//!   silently adopt another PLC segment's controller state. The
//!   single-site daemon stamps the empty site id.
//! * [`SnapshotStore::load`] walks generations newest-first and returns
//!   the first one that verifies, counting each skipped generation in
//!   `daemon.snapshot_rollbacks`. An empty store is a cold start, and so
//!   is the one damaged layout a single crash can actually produce with
//!   nothing to roll back to — a lone, torn generation 0 (the first save
//!   tore). Any other "every generation is damaged" layout is an error.
//! * After a durable save (`fsync` file, then directory), generations
//!   older than the configured `keep` window are pruned.
//!
//! Rolling back one generation re-runs one epoch. That is safe because
//! the controller replays deterministically: the snapshot holds the
//! complete decision state, agents re-derive theirs from the handshake,
//! and the workspace chaos tests pin byte-identical final reports across
//! a rollback.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use wolt_support::crash_point;
use wolt_support::crc::crc32;
use wolt_support::json::{FromJson, Json, ToJson};
use wolt_support::obs;

use crate::error::SnapshotCorrupt;
use crate::snapshot::DaemonSnapshot;
use crate::DaemonError;

/// Header and trailer magic: marks a fully-written snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"WSNP";

/// Trailer size: magic, payload length (u32 BE), CRC-32 (u32 BE) of
/// everything before the trailer (header + payload).
pub const TRAILER_BYTES: usize = 12;

/// Fixed header size before the site-id bytes: magic, site-id length
/// (u32 BE).
pub const HEADER_BYTES: usize = 8;

/// Default number of generations kept on disk.
pub const DEFAULT_KEEP: usize = 3;

/// Crash point: fires between the two halves of the payload write, so an
/// armed plan leaves a genuinely torn newest generation behind.
pub const CRASH_MID_WRITE: &str = "daemon.snapshot.mid_write";

/// Crash point: fires after the durable write but before old generations
/// are pruned, leaving more generations than `keep` behind.
pub const CRASH_PRE_PRUNE: &str = "daemon.snapshot.pre_prune";

/// A directory of checksummed snapshot generations, stamped with the
/// site they belong to.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    keep: usize,
    site: String,
    next_generation: u64,
}

impl SnapshotStore {
    /// Opens (creating if needed) the store at `dir`, keeping the last
    /// `keep` generations on disk. The store is stamped with the empty
    /// site id — the single-site daemon's store; a fleet uses
    /// [`SnapshotStore::open_site`] with each site's id.
    ///
    /// # Errors
    ///
    /// [`DaemonError::InvalidConfig`] when `keep` is zero;
    /// [`DaemonError::Io`] when the directory cannot be created or read.
    pub fn open(dir: impl Into<PathBuf>, keep: usize) -> Result<Self, DaemonError> {
        Self::open_site(dir, keep, "")
    }

    /// Opens (creating if needed) the store at `dir` for `site`: saves
    /// stamp the site id into every snapshot header, and loads refuse —
    /// with the typed [`SnapshotCorrupt::WrongSite`] — a directory whose
    /// intact snapshots are stamped for a different site.
    ///
    /// # Errors
    ///
    /// As [`SnapshotStore::open`].
    pub fn open_site(
        dir: impl Into<PathBuf>,
        keep: usize,
        site: &str,
    ) -> Result<Self, DaemonError> {
        if keep == 0 {
            return Err(DaemonError::InvalidConfig {
                context: "snapshot store must keep at least one generation".into(),
            });
        }
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let next_generation = Self::scan(&dir)?.last().map_or(0, |&g| g + 1);
        Ok(Self {
            dir,
            keep,
            site: site.to_string(),
            next_generation,
        })
    }

    /// The site this store is stamped for (empty for a single-site
    /// daemon's store).
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of one generation.
    pub fn generation_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("snapshot.{generation}.json"))
    }

    /// Generation numbers currently on disk, ascending.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn generations(&self) -> Result<Vec<u64>, DaemonError> {
        Self::scan(&self.dir)
    }

    fn scan(dir: &Path) -> Result<Vec<u64>, DaemonError> {
        let mut generations = Vec::new();
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(gen) = name
                .strip_prefix("snapshot.")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                generations.push(gen);
            }
        }
        generations.sort_unstable();
        Ok(generations)
    }

    /// Writes `snapshot` as the next generation, fsyncs it durable, then
    /// prunes generations beyond the keep window. Returns the generation
    /// number written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures. A failed save never damages
    /// existing generations — each save is a fresh file.
    pub fn save(&mut self, snapshot: &DaemonSnapshot) -> Result<u64, DaemonError> {
        let generation = self.next_generation;
        let bytes = encode_snapshot(snapshot, &self.site);
        let path = self.generation_path(generation);
        {
            let mut file = File::create(&path)?;
            // Two-part payload write with a declared crash point between:
            // an armed chaos plan aborts here with the newest generation
            // genuinely torn, which is exactly the state a power cut
            // leaves and the state `load` must roll back from.
            let mid = bytes.len() / 2;
            file.write_all(&bytes[..mid])?;
            crash_point!(CRASH_MID_WRITE);
            file.write_all(&bytes[mid..])?;
            file.sync_all()?;
        }
        // Make the new directory entry itself durable (best-effort on
        // platforms where directories cannot be opened for sync).
        if let Ok(dirfd) = File::open(&self.dir) {
            let _ = dirfd.sync_all();
        }
        self.next_generation = generation + 1;
        obs::counter_inc("daemon.snapshots");
        crash_point!(CRASH_PRE_PRUNE);
        self.prune(generation)?;
        Ok(generation)
    }

    /// Removes generations older than the keep window ending at `newest`.
    fn prune(&self, newest: u64) -> Result<(), DaemonError> {
        for generation in self.generations()? {
            if generation + self.keep as u64 <= newest {
                fs::remove_file(self.generation_path(generation))?;
                obs::counter_inc("daemon.snapshot_pruned");
            }
        }
        Ok(())
    }

    /// Loads the newest generation that verifies, rolling back over
    /// damaged ones (each recorded in `daemon.snapshot_rollbacks`).
    /// `Ok(None)` is an empty store — a cold start.
    ///
    /// One damaged layout is also a cold start rather than an error: a
    /// lone, torn generation 0. That is exactly the state a crash during
    /// the *first ever* save leaves (prune runs only after a durable
    /// save, so a lone generation N > 0 cannot exist with N torn), and
    /// replaying the session from scratch re-derives everything the lost
    /// snapshot held. Every other all-invalid layout cannot be produced
    /// by a single crash — each save is a fresh file — so it is treated
    /// as wholesale corruption and stays fatal.
    ///
    /// # Errors
    ///
    /// [`DaemonError::SnapshotCorrupt`] with
    /// [`SnapshotCorrupt::AllInvalid`] when generations beyond a lone
    /// torn first save exist but none verifies, or with
    /// [`SnapshotCorrupt::WrongSite`] when an intact generation is
    /// stamped for a different site (no fallback: the older generations
    /// are equally foreign); [`DaemonError::Io`] for directory-read
    /// failures.
    pub fn load(&self) -> Result<Option<(u64, DaemonSnapshot)>, DaemonError> {
        let generations = self.generations()?;
        if generations.is_empty() {
            return Ok(None);
        }
        let mut damage: Vec<String> = Vec::new();
        for &generation in generations.iter().rev() {
            let path = self.generation_path(generation);
            match fs::read(&path) {
                Ok(bytes) => match decode_snapshot(&bytes, &self.site) {
                    Ok(snapshot) => {
                        if !damage.is_empty() {
                            obs::counter_add("daemon.snapshot_rollbacks", damage.len() as u64);
                            obs::trace(
                                "daemon",
                                format!(
                                    "snapshot rollback to generation {generation}: {}",
                                    damage.join("; ")
                                ),
                            );
                        }
                        return Ok(Some((generation, snapshot)));
                    }
                    // An intact snapshot for another site is not damage
                    // to roll back over: the whole directory belongs to
                    // someone else.
                    Err(SnapshotDamage::WrongSite { found }) => {
                        return Err(DaemonError::SnapshotCorrupt(SnapshotCorrupt::WrongSite {
                            dir: self.dir.display().to_string(),
                            expected: self.site.clone(),
                            found,
                        }))
                    }
                    Err(SnapshotDamage::Damaged(reason)) => {
                        damage.push(format!("generation {generation}: {reason}"))
                    }
                },
                // A file that vanished between the scan and the read
                // (e.g. a concurrent prune) is treated like damage: fall
                // through to the next older generation.
                Err(e) => damage.push(format!("generation {generation}: {e}")),
            }
        }
        if generations == [0] {
            obs::counter_inc("daemon.snapshot_rollbacks");
            obs::trace(
                "daemon",
                format!(
                    "snapshot rollback to cold start (first save torn): {}",
                    damage.join("; ")
                ),
            );
            return Ok(None);
        }
        Err(DaemonError::SnapshotCorrupt(SnapshotCorrupt::AllInvalid {
            context: format!(
                "no valid snapshot generation in {}: {}",
                self.dir.display(),
                damage.join("; ")
            ),
        }))
    }
}

/// Why [`decode_snapshot`] refused one generation's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotDamage {
    /// The bytes fail verification (torn write, bit rot, garbage): a
    /// rollback candidate — older generations may still verify.
    Damaged(String),
    /// The bytes verify completely but the header stamps a different
    /// site: the store belongs to someone else, and rolling back cannot
    /// help.
    WrongSite {
        /// The site id stamped in the header.
        found: String,
    },
}

impl std::fmt::Display for SnapshotDamage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotDamage::Damaged(reason) => write!(f, "{reason}"),
            SnapshotDamage::WrongSite { found } => {
                write!(f, "snapshot is stamped for site {found:?}")
            }
        }
    }
}

/// Serializes a snapshot to its on-disk bytes: the WSNP site header
/// (magic, site-id length, site-id bytes), canonical compact JSON, then
/// the length+CRC trailer. The CRC covers header and payload.
pub fn encode_snapshot(snapshot: &DaemonSnapshot, site: &str) -> Vec<u8> {
    let payload = snapshot.to_json().to_compact().into_bytes();
    let site_len = u32::try_from(site.len()).expect("site id fits in u32");
    let mut bytes = Vec::with_capacity(HEADER_BYTES + site.len() + payload.len() + TRAILER_BYTES);
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&site_len.to_be_bytes());
    bytes.extend_from_slice(site.as_bytes());
    bytes.extend_from_slice(&payload);
    let len = u32::try_from(payload.len()).expect("snapshot payload fits in u32");
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&len.to_be_bytes());
    bytes.extend_from_slice(&crc.to_be_bytes());
    bytes
}

/// Verifies and parses one generation's on-disk bytes against the site
/// the store was opened for.
///
/// # Errors
///
/// [`SnapshotDamage::Damaged`] with a human-readable description of the
/// first verification failure (torn trailer, length mismatch, checksum
/// mismatch, malformed header or JSON);
/// [`SnapshotDamage::WrongSite`] when the bytes verify but are stamped
/// for a different site. Never panics, whatever the input bytes.
pub fn decode_snapshot(
    bytes: &[u8],
    expected_site: &str,
) -> Result<DaemonSnapshot, SnapshotDamage> {
    let damaged = SnapshotDamage::Damaged;
    if bytes.len() < HEADER_BYTES + TRAILER_BYTES {
        return Err(damaged(format!(
            "file of {} bytes is shorter than the {} header+trailer bytes (torn write)",
            bytes.len(),
            HEADER_BYTES + TRAILER_BYTES
        )));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - TRAILER_BYTES);
    if trailer[..4] != SNAPSHOT_MAGIC {
        return Err(damaged("trailer magic missing (torn write)".into()));
    }
    let stated_crc = u32::from_be_bytes([trailer[8], trailer[9], trailer[10], trailer[11]]);
    let actual_crc = crc32(body);
    if stated_crc != actual_crc {
        return Err(damaged(format!(
            "checksum mismatch: trailer {stated_crc:#010x}, file {actual_crc:#010x}"
        )));
    }
    // The checksum held, so the header and payload are exactly what a
    // save wrote; any inconsistency past this point is an encoder bug,
    // reported as damage rather than trusted.
    if body[..4] != SNAPSHOT_MAGIC {
        return Err(damaged("header magic missing".into()));
    }
    let site_len = u32::from_be_bytes([body[4], body[5], body[6], body[7]]) as usize;
    if HEADER_BYTES + site_len > body.len() {
        return Err(damaged(format!(
            "header states a {site_len}-byte site id, file has {} bytes before the trailer",
            body.len().saturating_sub(HEADER_BYTES)
        )));
    }
    let (site_bytes, payload) = body[HEADER_BYTES..].split_at(site_len);
    let site =
        std::str::from_utf8(site_bytes).map_err(|_| damaged("site id is not UTF-8".into()))?;
    let stated_len = u32::from_be_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]) as usize;
    if stated_len != payload.len() {
        return Err(damaged(format!(
            "trailer states {stated_len} payload bytes, file has {}",
            payload.len()
        )));
    }
    if site != expected_site {
        return Err(SnapshotDamage::WrongSite {
            found: site.to_string(),
        });
    }
    let text =
        std::str::from_utf8(payload).map_err(|_| damaged("payload is not UTF-8".to_string()))?;
    let json = Json::parse(text).map_err(|e| damaged(format!("payload is not JSON: {e}")))?;
    DaemonSnapshot::from_json(&json).map_err(|e| damaged(format!("payload shape: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_testbed::{ControllerConfig, ControllerCore, ControllerPolicy};
    use wolt_units::Mbps;

    fn sample(epochs_done: usize) -> DaemonSnapshot {
        let mut core = ControllerCore::new(
            2,
            ControllerConfig {
                policy: ControllerPolicy::Wolt,
                estimated_capacities: vec![Mbps::new(50.0), Mbps::new(30.0)],
                strict: false,
            },
        );
        core.handle_report(0, 0, &[Some(Mbps::new(20.0)), Some(Mbps::new(5.0))], 0)
            .unwrap();
        DaemonSnapshot {
            epochs_done,
            present: vec![true, false],
            unresponsive: vec![false, false],
            initial_attach: vec![Some(0), None],
            retries: epochs_done,
            core: core.snapshot(),
        }
    }

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir = std::env::temp_dir().join(format!(
            "wolt-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        SnapshotStore::open(dir, DEFAULT_KEEP).unwrap()
    }

    #[test]
    fn empty_store_is_a_cold_start() {
        let store = temp_store("cold");
        assert!(store.load().unwrap().is_none());
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn save_load_round_trips_newest_generation() {
        let mut store = temp_store("roundtrip");
        assert_eq!(store.save(&sample(1)).unwrap(), 0);
        assert_eq!(store.save(&sample(2)).unwrap(), 1);
        let (generation, snapshot) = store.load().unwrap().unwrap();
        assert_eq!(generation, 1);
        assert_eq!(snapshot, sample(2));
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn prunes_to_the_keep_window_and_reopens_past_it() {
        let mut store = temp_store("prune");
        for epoch in 1..=5 {
            store.save(&sample(epoch)).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![2, 3, 4]);
        // Reopening continues the generation sequence instead of
        // clobbering survivors.
        let dir = store.dir().to_path_buf();
        drop(store);
        let mut reopened = SnapshotStore::open(dir, DEFAULT_KEEP).unwrap();
        assert_eq!(reopened.save(&sample(6)).unwrap(), 5);
        fs::remove_dir_all(reopened.dir()).unwrap();
    }

    // The seed repo pinned `corrupt_snapshot_is_an_error_not_a_cold_start`:
    // any damage was fatal. The generational contract splits that into the
    // two tests below — damage *rolls back*, and only "all generations
    // damaged" remains an error (still never a silent cold start).
    #[test]
    fn corrupt_newest_generation_falls_back_to_previous_valid_one() {
        let mut store = temp_store("fallback");
        store.save(&sample(1)).unwrap();
        store.save(&sample(2)).unwrap();
        // Flip one payload byte of the newest generation.
        let newest = store.generation_path(1);
        let mut bytes = fs::read(&newest).unwrap();
        bytes[3] ^= 0x40;
        fs::write(&newest, &bytes).unwrap();
        let (generation, snapshot) = store.load().unwrap().unwrap();
        assert_eq!(generation, 0);
        assert_eq!(snapshot, sample(1));
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn truncated_newest_generation_falls_back_torn_write() {
        let mut store = temp_store("torn");
        store.save(&sample(1)).unwrap();
        store.save(&sample(2)).unwrap();
        // A torn write: the newest generation holds a strict prefix of
        // its intended bytes (trailer never made it).
        let newest = store.generation_path(1);
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();
        let (generation, snapshot) = store.load().unwrap().unwrap();
        assert_eq!(generation, 0);
        assert_eq!(snapshot, sample(1));
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn torn_first_save_is_a_cold_start_not_an_outage() {
        // A crash during the very first save leaves exactly one torn
        // generation 0 — nothing older exists to roll back to, and a
        // cold start re-derives everything the lost snapshot held.
        let mut store = temp_store("firstsave");
        store.save(&sample(1)).unwrap();
        let only = store.generation_path(0);
        let bytes = fs::read(&only).unwrap();
        fs::write(&only, &bytes[..bytes.len() / 2]).unwrap();
        assert!(store.load().unwrap().is_none());
        // A lone torn generation N > 0 cannot come from one crash
        // (prune runs only after a durable save), so it stays fatal.
        fs::rename(&only, store.generation_path(4)).unwrap();
        assert!(matches!(
            store.load(),
            Err(DaemonError::SnapshotCorrupt { .. })
        ));
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn all_generations_invalid_is_an_error_not_a_cold_start() {
        let mut store = temp_store("allbad");
        store.save(&sample(1)).unwrap();
        store.save(&sample(2)).unwrap();
        for generation in store.generations().unwrap() {
            fs::write(store.generation_path(generation), "{not json").unwrap();
        }
        assert!(matches!(
            store.load(),
            Err(DaemonError::SnapshotCorrupt { .. })
        ));
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn decode_rejects_every_trailer_violation() {
        let bytes = encode_snapshot(&sample(3), "");
        assert_eq!(decode_snapshot(&bytes, "").unwrap(), sample(3));
        // Too short for a trailer.
        assert!(decode_snapshot(&bytes[..TRAILER_BYTES - 1], "").is_err());
        // Trailer magic damaged.
        let mut bad = bytes.clone();
        let magic_at = bad.len() - TRAILER_BYTES;
        bad[magic_at] = b'X';
        assert!(decode_snapshot(&bad, "").is_err());
        // Length field inconsistent (bytes removed mid-file).
        let mut torn = bytes.clone();
        torn.drain(10..20);
        assert!(decode_snapshot(&torn, "").is_err());
        // Bit flips in the payload *and* in the header are both caught
        // by the checksum — a flipped site byte must read as damage
        // (rollback), never as a spurious wrong-site refusal.
        for at in [0, 5, HEADER_BYTES + 3] {
            let mut flipped = bytes.clone();
            flipped[at] ^= 0x01;
            assert!(matches!(
                decode_snapshot(&flipped, ""),
                Err(SnapshotDamage::Damaged(_))
            ));
        }
    }

    #[test]
    fn site_stamp_round_trips_and_mismatch_is_typed() {
        let bytes = encode_snapshot(&sample(2), "floor-3");
        assert_eq!(decode_snapshot(&bytes, "floor-3").unwrap(), sample(2));
        assert_eq!(
            decode_snapshot(&bytes, "annex"),
            Err(SnapshotDamage::WrongSite {
                found: "floor-3".into()
            })
        );
        // The single-site daemon (empty stamp) refuses a fleet site's
        // store, and vice versa.
        assert_eq!(
            decode_snapshot(&bytes, ""),
            Err(SnapshotDamage::WrongSite {
                found: "floor-3".into()
            })
        );
        let unstamped = encode_snapshot(&sample(2), "");
        assert_eq!(
            decode_snapshot(&unstamped, "floor-3"),
            Err(SnapshotDamage::WrongSite { found: "".into() })
        );
    }

    #[test]
    fn store_for_one_site_refuses_another_sites_directory() {
        let store = temp_store("wrongsite");
        let dir = store.dir().to_path_buf();
        drop(store);
        let _ = fs::remove_dir_all(&dir);
        let mut alpha = SnapshotStore::open_site(&dir, DEFAULT_KEEP, "alpha").unwrap();
        alpha.save(&sample(1)).unwrap();
        assert!(alpha.load().unwrap().is_some());
        let beta = SnapshotStore::open_site(&dir, DEFAULT_KEEP, "beta").unwrap();
        match beta.load() {
            Err(DaemonError::SnapshotCorrupt(SnapshotCorrupt::WrongSite {
                expected,
                found,
                ..
            })) => {
                assert_eq!(expected, "beta");
                assert_eq!(found, "alpha");
            }
            other => panic!("expected WrongSite, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_snapshot_files_in_the_directory_are_ignored() {
        let mut store = temp_store("strays");
        store.save(&sample(1)).unwrap();
        fs::write(store.dir().join("snapshot.notanumber.json"), "x").unwrap();
        fs::write(store.dir().join("README"), "x").unwrap();
        assert_eq!(store.generations().unwrap(), vec![0]);
        assert!(store.load().unwrap().is_some());
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn zero_keep_is_rejected() {
        let dir = std::env::temp_dir().join("wolt-store-zerokeep");
        assert!(matches!(
            SnapshotStore::open(dir, 0),
            Err(DaemonError::InvalidConfig { .. })
        ));
    }
}
