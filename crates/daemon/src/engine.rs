//! The transport-agnostic session engine: one site's Central Controller
//! session loop, factored out of [`crate::server::Daemon`] so it can be
//! driven two ways — exclusively by one `Daemon` (the single-site
//! server), or multiplexed with other sites' engines on a fleet shard
//! (`wolt_fleet`).
//!
//! The engine owns everything the session loop used to own inline: the
//! [`ControllerCore`], the agent writers, the bounded inbox receiver,
//! the ledger (present/unresponsive/initial-attach), and the per-epoch
//! snapshot schedule. What it does *not* own is the accept path: reader
//! tasks are fed by whoever accepts connections, through the
//! [`Incoming`] sender returned by [`SessionEngine::new`].
//!
//! [`SessionEngine::step`] runs one bounded unit of work — a short
//! connect-wait poll, or one full session event (command, report,
//! directive transaction, snapshot) — and returns. A fleet shard
//! round-robins `step` across its sites; the single-site daemon just
//! loops it. Because one engine is stepped by exactly one thread and
//! every decision stays inside its own `ControllerCore`, the canonical
//! report a site produces is byte-identical however many engines share
//! the process — the fleet's headline invariant is structural, not
//! coincidental: the single-site daemon *is* a one-engine fleet.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use wolt_sim::Scenario;
use wolt_support::pool::TaskPool;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};
use wolt_support::{crash_point, obs};
use wolt_testbed::codec::ReadPatience;
use wolt_testbed::protocol::{ToAgent, ToClient, ToController};
use wolt_testbed::{
    assemble_report, coalesce_frames, ControllerConfig, ControllerCore, Deadlines, Directive,
    ReportFrame, SessionEvent, SessionLedger, TestbedError,
};
use wolt_units::Mbps;

use crate::inbox::{self, Inbox, InboxSender};
use crate::server::{DaemonConfig, DaemonOutcome, DaemonStats};
use crate::snapshot::DaemonSnapshot;
use crate::store::SnapshotStore;
use crate::wire::{self, Envelope};
use crate::DaemonError;

/// Crash point after an epoch's event completed but before its snapshot
/// is written: the restarted daemon replays the whole event.
pub const CRASH_PRE_SNAPSHOT: &str = "daemon.epoch.pre_snapshot";

/// Crash point right after an epoch's snapshot is durable: the restarted
/// daemon resumes at the next event with zero replay.
pub const CRASH_POST_SNAPSHOT: &str = "daemon.epoch.post_snapshot";

/// The polling tick used when `read_stall` arms patient reads: the
/// socket read timeout under the stall budget.
const READ_TICK: Duration = Duration::from_millis(25);

/// How long one connect-wait [`SessionEngine::step`] blocks on the inbox
/// before yielding, so a shard hosting several waiting sites keeps all
/// of them responsive.
const WAIT_TICK: Duration = Duration::from_millis(25);

/// Wire-traffic metering: the reader tasks account every frame and byte
/// that crosses the daemon's sockets, inbound.
pub fn note_frame_in(bytes: usize) {
    static FRAMES: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    static BYTES: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    FRAMES
        .get_or_init(|| obs::counter("daemon.frames_in"))
        .inc();
    BYTES
        .get_or_init(|| obs::counter("daemon.bytes_in"))
        .add(bytes as u64);
}

/// Wire-traffic metering, outbound twin of [`note_frame_in`].
pub fn note_frame_out(bytes: usize) {
    static FRAMES: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    static BYTES: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    FRAMES
        .get_or_init(|| obs::counter("daemon.frames_out"))
        .inc();
    BYTES
        .get_or_init(|| obs::counter("daemon.bytes_out"))
        .add(bytes as u64);
}

/// Whether the inbox shed policy may drop a queued message under
/// pressure: only telemetry (scan reports), which the harness's
/// retransmission schedule recovers. Acks and lifecycle messages are
/// load-bearing — dropping one would wedge a transaction or the session.
pub fn incoming_sheddable(msg: &Incoming) -> bool {
    matches!(msg, Incoming::Msg(ToController::Report { .. }))
}

/// Converts a drained run of sheddable messages into core report frames.
/// The inbox only batches consecutive messages matching
/// [`incoming_sheddable`], so everything here is a scan report.
fn report_frames(run: Vec<Incoming>) -> Vec<ReportFrame> {
    run.into_iter()
        .filter_map(|m| match m {
            Incoming::Msg(ToController::Report {
                client,
                epoch,
                rates,
                attached,
            }) => Some(ReportFrame {
                client,
                epoch,
                rates,
                attached,
            }),
            _ => None,
        })
        .collect()
}

/// Everything a reader task can feed a session engine.
pub enum Incoming {
    /// A connection completed its handshake for `client`.
    Register {
        /// The client index the hello named.
        client: usize,
        /// The write half of the agent's connection.
        writer: TcpStream,
    },
    /// A protocol message from a registered agent.
    Msg(ToController),
    /// An operator asked this engine's session to stop.
    Stop {
        /// Free-form reason, echoed into the logs.
        reason: String,
    },
    /// A registered agent's connection ended.
    Gone {
        /// The client whose connection died.
        client: usize,
    },
}

/// How one driven event ended.
enum EventEnd {
    Completed,
    Unresponsive,
    Stopped,
}

/// What one [`SessionEngine::step`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineStep {
    /// Still waiting for agents to connect; nothing to drive yet.
    Waiting,
    /// Drove one unit of work (a registration, or one session event).
    Progressed,
    /// The session is over (completed or stopped): time to dismiss
    /// agents and call [`SessionEngine::finish`].
    Finished,
}

/// Where the engine is in its lifecycle.
enum Phase {
    /// Collecting agent registrations until every client has a writer.
    /// The connect deadline arms on the first step.
    Waiting { deadline: Option<Instant> },
    /// Driving session events. `entry_checked` guards the one-time
    /// stop-after-already-reached check a restored engine needs.
    Driving { entry_checked: bool },
    /// All events driven (or the run was stopped).
    Done { stopped: bool },
}

/// One site's session loop as a steppable state machine. See the module
/// docs for the driving contract; the sequence is always
/// `new → step…step (until Finished or Err) → dismiss_agents →
/// reap_strays… → finish`.
pub struct SessionEngine {
    site: String,
    scenario: Scenario,
    events: Vec<SessionEvent>,
    config: DaemonConfig,
    store: Option<SnapshotStore>,
    session: Session,
    greeting: Arc<Vec<Option<usize>>>,
    epochs_done: usize,
    present: Vec<bool>,
    unresponsive: Vec<bool>,
    initial_attach: Vec<Option<usize>>,
    phase: Phase,
    drive_elapsed: Duration,
    teardown_started: Option<Instant>,
    /// Per-site deterministic counters (`None` for the site-less
    /// single-site daemon).
    ctr_epochs: Option<obs::Counter>,
    ctr_solved: Option<obs::Counter>,
}

impl SessionEngine {
    /// Builds the engine for one site: estimates capacities, restores
    /// the newest snapshot (when `config.snapshot_dir` is set), and
    /// opens the session inbox. Returns the engine and the inbox sender
    /// the accept path clones into every reader task — the engine holds
    /// no sender itself, so once every reader is gone the inbox
    /// disconnects and teardown can prove quiescence.
    ///
    /// `site` is the empty string for the single-site daemon; a fleet
    /// passes each site's id, which stamps the snapshot store and the
    /// per-site metrics.
    ///
    /// # Errors
    ///
    /// [`DaemonError::InvalidConfig`] for an empty scenario or zero
    /// retry budgets; [`DaemonError::SnapshotCorrupt`] for an
    /// unrecoverable (or wrong-site) store; [`DaemonError::Protocol`]
    /// for a snapshot that does not match the scenario.
    pub fn new(
        site: &str,
        scenario: Scenario,
        events: Vec<SessionEvent>,
        config: DaemonConfig,
    ) -> Result<(Self, InboxSender<Incoming>), DaemonError> {
        if scenario.user_positions.is_empty() || scenario.extender_positions.is_empty() {
            return Err(DaemonError::InvalidConfig {
                context: "scenario needs at least one user and one extender".into(),
            });
        }
        if config.deadlines.event_attempts == 0 || config.deadlines.ack_attempts == 0 {
            return Err(DaemonError::InvalidConfig {
                context: "deadlines need at least one attempt per message".into(),
            });
        }
        let n_users = scenario.user_positions.len();

        // Offline capacity estimation — identical to the rig's.
        let mut rng = ChaCha8Rng::seed_from_u64(config.noise_seed);
        let estimated: Vec<Mbps> = scenario
            .capacities
            .iter()
            .map(|&c| config.estimator.estimate(c, &mut rng))
            .collect::<Result<_, _>>()
            .map_err(|e| {
                DaemonError::from(TestbedError::Layer {
                    context: format!("capacity estimation: {e}"),
                })
            })?;
        let core_config = ControllerConfig {
            policy: config.policy,
            estimated_capacities: estimated,
            strict: false,
        };

        // Cold start or snapshot restore. The store falls back over torn
        // or corrupt generations by itself; only an unrecoverable store
        // (every generation damaged, or stamped for another site)
        // errors out.
        let store = match &config.snapshot_dir {
            Some(dir) => Some(SnapshotStore::open_site(dir, config.snapshot_keep, site)?),
            None => None,
        };
        let restored = match &store {
            Some(store) => store.load()?.map(|(_generation, snap)| snap),
            None => None,
        };
        let (core, epochs_done, present, unresponsive, initial_attach, retries) = match restored {
            Some(snap) => {
                if snap.present.len() != n_users {
                    return Err(DaemonError::Protocol {
                        context: "snapshot is for a different scenario size".into(),
                    });
                }
                let core = ControllerCore::restore(core_config, snap.core)?;
                (
                    core,
                    snap.epochs_done,
                    snap.present,
                    snap.unresponsive,
                    snap.initial_attach,
                    snap.retries,
                )
            }
            None => (
                ControllerCore::new(n_users, core_config),
                0,
                vec![false; n_users],
                vec![false; n_users],
                vec![None; n_users],
                0,
            ),
        };

        // What reconnecting agents are told in the handshake: the saved
        // association at startup (always `None` on a cold start).
        let greeting: Arc<Vec<Option<usize>>> = Arc::new(core.association().to_vec());

        let (tx, rx) = inbox::channel::<Incoming>(config.inbox_cap, incoming_sheddable);
        let session = Session {
            core,
            deadlines: config.deadlines,
            writers: (0..n_users).map(|_| None).collect(),
            rx,
            retries,
            msgs_in: 0,
            latencies: Vec::new(),
            stop_reason: None,
            coalesce: config.coalesce,
            ctr_coalesced: if site.is_empty() {
                None
            } else {
                Some(obs::site_counter(site, "frames_coalesced"))
            },
        };
        let (ctr_epochs, ctr_solved) = if site.is_empty() {
            (None, None)
        } else {
            (
                Some(obs::site_counter(site, "epochs")),
                Some(obs::site_counter(site, "solved")),
            )
        };
        Ok((
            Self {
                site: site.to_string(),
                scenario,
                events,
                config,
                store,
                session,
                greeting,
                epochs_done,
                present,
                unresponsive,
                initial_attach,
                phase: Phase::Waiting { deadline: None },
                drive_elapsed: Duration::ZERO,
                teardown_started: None,
                ctr_epochs,
                ctr_solved,
            },
            tx,
        ))
    }

    /// The site this engine serves (empty for a single-site daemon).
    pub fn site(&self) -> &str {
        &self.site
    }

    /// The handshake greeting: each client's saved attachment at
    /// startup.
    pub fn greeting(&self) -> Arc<Vec<Option<usize>>> {
        Arc::clone(&self.greeting)
    }

    /// Events completed so far (including restored ones).
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// Events configured in total.
    pub fn n_events(&self) -> usize {
        self.events.len()
    }

    /// Users in this engine's scenario.
    pub fn n_users(&self) -> usize {
        self.scenario.user_positions.len()
    }

    /// Runs one bounded unit of work: a short connect-wait poll while
    /// agents are still registering, or one full session event once
    /// they have. Call repeatedly until it returns
    /// [`EngineStep::Finished`] (or errs), then tear down.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Timeout`] when the expected agents never connect;
    /// [`DaemonError::Testbed`] for session-machinery failures;
    /// [`DaemonError::Io`] for socket and snapshot failures. After an
    /// error the engine is finished driving: dismiss its agents and
    /// discard it (the error replaces the outcome).
    pub fn step(&mut self) -> Result<EngineStep, DaemonError> {
        match self.phase {
            Phase::Waiting { deadline } => self.step_wait(deadline),
            Phase::Driving { entry_checked } => {
                let t0 = Instant::now();
                let result = self.step_drive(entry_checked);
                self.drive_elapsed += t0.elapsed();
                result
            }
            Phase::Done { .. } => Ok(EngineStep::Finished),
        }
    }

    /// One connect-wait poll, mirroring the pre-refactor
    /// `wait_for_agents` one bounded receive at a time.
    fn step_wait(&mut self, deadline: Option<Instant>) -> Result<EngineStep, DaemonError> {
        let deadline = deadline.unwrap_or_else(|| Instant::now() + self.config.connect_deadline);
        self.phase = Phase::Waiting {
            deadline: Some(deadline),
        };
        if !self.session.writers.iter().any(Option::is_none) {
            self.phase = Phase::Driving {
                entry_checked: false,
            };
            return Ok(EngineStep::Progressed);
        }
        let wait = deadline
            .saturating_duration_since(Instant::now())
            .min(WAIT_TICK);
        match self.session.rx.recv_timeout(wait) {
            Ok(Incoming::Register { client, writer }) => {
                self.session.writers[client] = Some(writer);
                if !self.session.writers.iter().any(Option::is_none) {
                    self.phase = Phase::Driving {
                        entry_checked: false,
                    };
                }
                Ok(EngineStep::Progressed)
            }
            Ok(Incoming::Gone { client }) => {
                self.session.writers[client] = None;
                Ok(EngineStep::Waiting)
            }
            Ok(Incoming::Stop { reason }) => {
                // An operator may stop a session that never assembled
                // (that is how a fleet drains a site whose agents are
                // yet to connect): proceed to the driving phase, whose
                // first event observes the stop reason and ends the run.
                self.session.stop_reason = Some(reason);
                self.phase = Phase::Driving {
                    entry_checked: false,
                };
                Ok(EngineStep::Progressed)
            }
            Ok(Incoming::Msg(_)) => {
                // Agents do not speak before their first command; drop
                // pre-session noise.
                self.session.msgs_in += 1;
                Ok(EngineStep::Waiting)
            }
            Err(RecvTimeoutError::Timeout) => {
                if Instant::now() >= deadline {
                    let missing: Vec<usize> = self
                        .session
                        .writers
                        .iter()
                        .enumerate()
                        .filter_map(|(i, w)| w.is_none().then_some(i))
                        .collect();
                    return Err(DaemonError::Timeout {
                        waiting_for: format!("agents {missing:?} to connect"),
                    });
                }
                Ok(EngineStep::Waiting)
            }
            Err(RecvTimeoutError::Disconnected) => Err(TestbedError::ChannelClosed {
                endpoint: "acceptor",
            }
            .into()),
        }
    }

    /// Drives one session event (skipping over events for unresponsive
    /// clients), snapshots, and checks the stop conditions — one
    /// iteration of the pre-refactor `drive` loop.
    fn step_drive(&mut self, entry_checked: bool) -> Result<EngineStep, DaemonError> {
        if !entry_checked {
            self.phase = Phase::Driving {
                entry_checked: true,
            };
            if self
                .config
                .stop_after
                .is_some_and(|k| self.epochs_done >= k)
            {
                self.phase = Phase::Done { stopped: true };
                return Ok(EngineStep::Finished);
            }
        }
        loop {
            let idx = self.epochs_done;
            let Some(&event) = self.events.get(idx) else {
                self.phase = Phase::Done { stopped: false };
                return Ok(EngineStep::Finished);
            };
            let epoch = idx as u64;
            let (i, is_join) = match event {
                SessionEvent::Join(i) => (i, true),
                SessionEvent::Leave(i) => (i, false),
            };
            let n_users = self.scenario.user_positions.len();
            if i < n_users && self.unresponsive[i] {
                // A client whose earlier event never completed is out of
                // the session: later events for it are skipped.
                self.advance_epoch(idx);
                continue;
            }
            let valid = i < n_users
                && if is_join {
                    !self.present[i]
                } else {
                    self.present[i]
                };
            if !valid {
                return Err(TestbedError::InvalidConfig {
                    context: if is_join {
                        "join of an out-of-range or already-present client"
                    } else {
                        "leave of an out-of-range or absent client"
                    },
                }
                .into());
            }

            match self.session.drive_event(epoch, i, is_join)? {
                EventEnd::Completed => {
                    if let Some(c) = &self.ctr_solved {
                        c.inc();
                    }
                    if is_join {
                        self.present[i] = true;
                        if self.initial_attach[i].is_none() {
                            // Strict-equivalent to the rig's read of the
                            // physical state: on a fault-free network the
                            // CC view after the join transaction *is* the
                            // physical attachment.
                            self.initial_attach[i] = self.session.core.association()[i];
                        }
                    } else {
                        self.present[i] = false;
                    }
                }
                EventEnd::Unresponsive => {
                    if is_join {
                        self.unresponsive[i] = true;
                    } else {
                        self.present[i] = false;
                    }
                }
                EventEnd::Stopped => {
                    self.phase = Phase::Done { stopped: true };
                    return Ok(EngineStep::Finished);
                }
            }
            self.advance_epoch(idx);
            if let Some(bound) = self.config.max_staleness {
                self.session.core.evict_stale(bound);
            }
            if let Some(store) = self.store.as_mut() {
                // A crash on either side of the save is recoverable:
                // before it, the restarted daemon replays this event;
                // after it, the daemon resumes at the next one. Both
                // replays are byte-identical because the snapshot
                // carries complete decision state and agents re-derive
                // theirs from the handshake.
                crash_point!(CRASH_PRE_SNAPSHOT);
                let t0 = Instant::now();
                store.save(&DaemonSnapshot {
                    epochs_done: self.epochs_done,
                    present: self.present.clone(),
                    unresponsive: self.unresponsive.clone(),
                    initial_attach: self.initial_attach.clone(),
                    retries: self.session.retries,
                    core: self.session.core.snapshot(),
                })?;
                obs::observe_duration("daemon.snapshot_write_us", t0.elapsed());
                crash_point!(CRASH_POST_SNAPSHOT);
            }
            if self.session.stop_reason.is_some()
                || self.config.stop_after == Some(self.epochs_done)
            {
                self.phase = Phase::Done { stopped: true };
                return Ok(EngineStep::Finished);
            }
            return Ok(EngineStep::Progressed);
        }
    }

    /// Advances the epoch cursor past event `idx`, counting it in the
    /// per-site metrics.
    fn advance_epoch(&mut self, idx: usize) {
        self.epochs_done = idx + 1;
        if let Some(c) = &self.ctr_epochs {
            c.inc();
        }
    }

    /// Tells every connected agent to exit (so sockets close and reader
    /// tasks drain) and flushes the writers. Marks the start of the
    /// teardown window counted into the outcome's elapsed time.
    pub fn dismiss_agents(&mut self) {
        self.teardown_started.get_or_insert_with(Instant::now);
        self.session.shutdown_agents();
    }

    /// One bounded teardown poll: agents that registered after the
    /// session stopped reading still need a dismissal, or their reader
    /// tasks would wait forever. Returns `true` once the inbox has
    /// disconnected — every reader task is gone, the engine is
    /// quiescent.
    pub fn reap_strays(&mut self, wait: Duration) -> bool {
        match self.session.rx.recv_timeout(wait) {
            Ok(Incoming::Register { mut writer, .. }) => {
                let _ = wire::send(&mut writer, &Envelope::Agent(ToAgent::Shutdown));
                false
            }
            Ok(_) => false,
            Err(RecvTimeoutError::Timeout) => false,
            Err(RecvTimeoutError::Disconnected) => true,
        }
    }

    /// Assembles the session outcome. Call after driving has finished
    /// and the agents are dismissed.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Testbed`] when the report cannot be assembled;
    /// [`DaemonError::InvalidConfig`] when the engine is still mid-run
    /// (a driver bug).
    pub fn finish(self) -> Result<DaemonOutcome, DaemonError> {
        let Phase::Done { stopped } = self.phase else {
            return Err(DaemonError::InvalidConfig {
                context: "finish() called while the engine is still driving".into(),
            });
        };
        let teardown = self
            .teardown_started
            .map_or(Duration::ZERO, |t| t.elapsed());
        let physical_assoc = self.session.core.association().to_vec();
        let report = assemble_report(
            &self.scenario,
            &physical_assoc,
            SessionLedger {
                policy_name: self.config.policy.name().to_string(),
                present: self.present,
                unresponsive: self.unresponsive,
                initial_attach: self.initial_attach,
                crashed: Vec::new(),
                wedged: Vec::new(),
                declared_dead: self.session.core.declared_dead().to_vec(),
                directives: self.session.core.directives(),
                degraded_solves: self.session.core.degraded_solves(),
                retries: self.session.retries,
            },
        )?;
        let completed = !stopped && self.epochs_done == self.events.len();
        Ok(DaemonOutcome {
            report,
            completed,
            epochs_done: self.epochs_done,
            stats: DaemonStats {
                msgs_in: self.session.msgs_in,
                resolve_latencies: self.session.latencies,
                elapsed: self.drive_elapsed + teardown,
            },
        })
    }
}

/// What the accept path decided for one agent hello.
pub enum HelloDecision {
    /// Register the agent with this session inbox and greet it with its
    /// saved attachment.
    Accept {
        /// The session inbox of the site that owns this agent.
        sender: InboxSender<Incoming>,
        /// The saved attachment for the handshake ack.
        attached: Option<usize>,
    },
    /// Refuse with a typed reply, then close (e.g.
    /// [`Envelope::SiteGone`]).
    Reject(Envelope),
    /// Close silently (a malformed hello, e.g. an out-of-range client).
    Close,
}

/// Per-connection reader: handshake, then forward frames into the
/// session inbox the router picked, until the connection ends.
///
/// `route` maps a hello's `(client, site)` to a [`HelloDecision`];
/// `control` handles every other pre-handshake envelope (operator stop,
/// metrics and fleet queries) and returns whether to keep serving the
/// connection. This one function is the accept path for both the
/// single-site daemon and the fleet — only the two closures differ.
///
/// When `read_stall` is nonzero the socket read is *patient*: idling
/// between frames is free (and ends cleanly once `stop` is set, so a
/// silent control connection cannot hang teardown), but a peer that
/// stalls mid-frame past the budget loses the connection and is counted
/// in `daemon.read_timeouts`.
pub fn serve_connection(
    mut stream: TcpStream,
    stop: &Arc<AtomicBool>,
    read_stall: Duration,
    route: &dyn Fn(usize, Option<&str>) -> HelloDecision,
    control: &dyn Fn(&mut TcpStream, Envelope) -> bool,
) {
    let _ = stream.set_nodelay(true);
    let patient = !read_stall.is_zero();
    let mid_frame_stalls = if patient {
        let _ = stream.set_read_timeout(Some(READ_TICK));
        (read_stall.as_millis() / READ_TICK.as_millis()).max(1) as u32
    } else {
        0
    };
    let recv = |stream: &mut TcpStream| -> std::io::Result<Option<(Envelope, usize)>> {
        if !patient {
            return wire::recv_counted(stream);
        }
        let mut keep_waiting = || !stop.load(Ordering::Relaxed);
        let mut patience = ReadPatience {
            keep_waiting: &mut keep_waiting,
            mid_frame_stalls,
        };
        let result = wire::recv_counted_patient(stream, &mut patience);
        if let Err(e) = &result {
            if e.kind() == std::io::ErrorKind::TimedOut {
                obs::counter_inc("daemon.read_timeouts");
            }
        }
        result
    };
    // Pre-handshake: the connection is a control channel until it sends
    // `Hello`. Control connections may issue any number of metrics or
    // fleet queries (each answered inline — safe here because no
    // session-loop writer shares this stream yet) and/or a stop request.
    let (client, tx) = loop {
        match recv(&mut stream) {
            Ok(Some((Envelope::Hello { client, site, .. }, bytes))) => {
                match route(client, site.as_deref()) {
                    HelloDecision::Accept { sender, attached } => {
                        note_frame_in(bytes);
                        match wire::send_counted(&mut stream, &Envelope::HelloAck { attached }) {
                            Ok(sent) => note_frame_out(sent),
                            Err(_) => return,
                        }
                        break (client, sender);
                    }
                    HelloDecision::Reject(reply) => {
                        note_frame_in(bytes);
                        if let Ok(sent) = wire::send_counted(&mut stream, &reply) {
                            note_frame_out(sent);
                        }
                        return;
                    }
                    HelloDecision::Close => return,
                }
            }
            Ok(Some((envelope, bytes))) => {
                note_frame_in(bytes);
                if !control(&mut stream, envelope) {
                    return;
                }
            }
            _ => return,
        }
    };
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    if tx.send(Incoming::Register { client, writer }).is_err() {
        return;
    }
    loop {
        match recv(&mut stream) {
            Ok(Some((Envelope::Ctrl(msg), bytes))) => {
                note_frame_in(bytes);
                if tx.send(Incoming::Msg(msg)).is_err() {
                    return;
                }
            }
            Ok(Some((Envelope::Shutdown { reason }, bytes))) => {
                note_frame_in(bytes);
                obs::trace("daemon", format!("operator stop: {reason}"));
                let _ = tx.send(Incoming::Stop { reason });
            }
            Ok(Some((Envelope::MetricsRequest, bytes))) => {
                // A registered agent connection shares its write half
                // with the session loop; replying here could interleave
                // frames. Count and drop.
                note_frame_in(bytes);
                obs::counter_inc("daemon.metrics_requests");
            }
            Ok(Some(_)) | Ok(None) | Err(_) => {
                let _ = tx.send(Incoming::Gone { client });
                return;
            }
        }
    }
}

/// Spawns the accept loop: a nonblocking listener polled until `stop`,
/// dispatching each connection onto a reader pool of `workers` tasks.
/// Connections past `max_connections` (0 = unlimited) are refused with a
/// typed [`Envelope::Busy`] reply and counted in
/// `daemon.conns_rejected`.
///
/// The pool lives (and joins its readers) on the spawned thread, so
/// `JoinHandle::join` returning means every reader task has exited.
///
/// # Errors
///
/// Propagates the failure to switch the listener to nonblocking mode.
pub fn spawn_acceptor(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    workers: usize,
    max_connections: usize,
    handler: Arc<dyn Fn(TcpStream) + Send + Sync>,
) -> std::io::Result<thread::JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    let pool = TaskPool::new(workers);
    // Live connections, shared with the reader tasks so the cap
    // reflects closures as they happen.
    let active = Arc::new(AtomicUsize::new(0));
    Ok(thread::spawn(move || {
        // The pool lives (and joins its readers) on this thread.
        let pool = pool;
        while !stop.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    if max_connections > 0 && active.load(Ordering::Relaxed) >= max_connections {
                        // Refuse with a typed reply so the peer can tell
                        // overload from a dead daemon and back off
                        // instead of hammering.
                        obs::counter_inc("daemon.conns_rejected");
                        pool.execute(move || {
                            let _ = stream.set_nodelay(true);
                            if let Ok(sent) = wire::send_counted(
                                &mut stream,
                                &Envelope::Busy {
                                    limit: max_connections as u64,
                                },
                            ) {
                                note_frame_out(sent);
                            }
                        });
                        continue;
                    }
                    active.fetch_add(1, Ordering::Relaxed);
                    let handler = Arc::clone(&handler);
                    let active = Arc::clone(&active);
                    pool.execute(move || {
                        handler(stream);
                        active.fetch_sub(1, Ordering::Relaxed);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        }
    }))
}

/// The session loop's mutable state: the decision core plus the TCP
/// transport bookkeeping.
struct Session {
    core: ControllerCore,
    deadlines: Deadlines,
    writers: Vec<Option<TcpStream>>,
    rx: Inbox<Incoming>,
    retries: usize,
    msgs_in: usize,
    latencies: Vec<Duration>,
    stop_reason: Option<String>,
    /// Drain-what's-queued telemetry coalescing (`DaemonConfig::coalesce`).
    coalesce: bool,
    /// Per-site twin of `daemon.frames_coalesced` (fleet engines only).
    ctr_coalesced: Option<obs::Counter>,
}

/// A directive awaiting its ack over TCP.
struct PendingDirective {
    client: usize,
    extender: usize,
    seq: u64,
    attempt: u32,
    deadline: Instant,
}

impl Session {
    /// Drives one join/leave event: send the command, process the
    /// resulting report/departure through the core, run the directive
    /// transaction, retransmitting the command on the rig's schedule.
    fn drive_event(
        &mut self,
        epoch: u64,
        client: usize,
        is_join: bool,
    ) -> Result<EventEnd, DaemonError> {
        if self.stop_reason.is_some() {
            return Ok(EventEnd::Stopped);
        }
        for attempt in 1..=self.deadlines.event_attempts {
            if attempt > 1 {
                self.retries += 1;
            }
            let cmd = if is_join {
                ToAgent::Join { epoch, attempt }
            } else {
                ToAgent::Leave { epoch, attempt }
            };
            if !self.send_agent(client, &cmd) {
                // No connection to the client: its event can never
                // complete. Treat like the rig's silent-agent path.
                return Ok(EventEnd::Unresponsive);
            }
            let deadline = Instant::now() + self.deadlines.event;
            loop {
                let wait = deadline.saturating_duration_since(Instant::now());
                let mut drained = match self.recv_run(wait) {
                    Ok(batch) => batch,
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(TestbedError::ChannelClosed {
                            endpoint: "acceptor",
                        }
                        .into())
                    }
                };
                if drained.len() > 1 {
                    // A multi-message drain is, by construction, a
                    // consecutive run of scan reports: coalesce and plan
                    // once for the whole burst.
                    self.msgs_in += drained.len();
                    if let Some(done_epoch) = self.process_report_run(drained)? {
                        if done_epoch == epoch {
                            return Ok(EventEnd::Completed);
                        }
                    }
                    continue;
                }
                let incoming = drained.pop().expect("drained run is never empty");
                match incoming {
                    Incoming::Register { client: c, writer } => {
                        self.writers[c] = Some(writer);
                    }
                    Incoming::Gone { client: c } => {
                        self.writers[c] = None;
                    }
                    Incoming::Stop { reason } => {
                        self.stop_reason = Some(reason);
                        return Ok(EventEnd::Stopped);
                    }
                    Incoming::Msg(msg) => {
                        self.msgs_in += 1;
                        if let Some(done_epoch) = self.process_event_msg(msg)? {
                            if done_epoch == epoch {
                                return Ok(EventEnd::Completed);
                            }
                        }
                    }
                }
            }
        }
        Ok(EventEnd::Unresponsive)
    }

    /// Feeds one protocol message through the core; returns the epoch of
    /// a completed event transaction, if this message triggered one.
    fn process_event_msg(&mut self, msg: ToController) -> Result<Option<u64>, DaemonError> {
        match msg {
            ToController::Report {
                client,
                epoch,
                rates,
                attached,
            } => {
                if self.core.is_duplicate(epoch) {
                    return Ok(None);
                }
                let t0 = Instant::now();
                let directives = self.core.handle_report(client, epoch, &rates, attached)?;
                self.transact(directives, epoch)?;
                let took = t0.elapsed();
                obs::observe_duration("daemon.resolve_us", took);
                self.latencies.push(took);
                Ok(Some(epoch))
            }
            ToController::Departed { client, epoch } => {
                if self.core.is_duplicate(epoch) {
                    return Ok(None);
                }
                let t0 = Instant::now();
                let directives = self.core.handle_departed(client, epoch)?;
                self.transact(directives, epoch)?;
                let took = t0.elapsed();
                obs::observe_duration("daemon.resolve_us", took);
                self.latencies.push(took);
                Ok(Some(epoch))
            }
            ToController::Ack {
                client,
                seq,
                extender,
            } => {
                // A late ack refreshes the CC view iff it matches the
                // newest directive.
                self.core.handle_ack(client, seq, extender);
                Ok(None)
            }
        }
    }

    /// Receives from the inbox: a consecutive run of coalescible scan
    /// reports when coalescing is on, exactly one message when it is
    /// off. Batching is structural (drain-what's-queued), never
    /// time-based, so a clean serialized session — where at most one
    /// report is ever queued — behaves identically either way.
    fn recv_run(&self, wait: Duration) -> Result<Vec<Incoming>, RecvTimeoutError> {
        if self.coalesce {
            self.rx.recv_batch_timeout(wait, incoming_sheddable)
        } else {
            self.rx.recv_timeout(wait).map(|m| vec![m])
        }
    }

    /// Counts frames dropped by coalescing, globally and per site.
    fn note_coalesced(&self, dropped: usize) {
        if dropped == 0 {
            return;
        }
        obs::counter("daemon.frames_coalesced").add(dropped as u64);
        if let Some(ctr) = &self.ctr_coalesced {
            ctr.add(dropped as u64);
        }
    }

    /// Feeds a drained run of scan reports through the core as one
    /// batch: coalesce each client to its newest frame, ingest the
    /// survivors, plan once, transact once. Returns the epoch of the
    /// completed event transaction, if the batch contained one.
    fn process_report_run(&mut self, run: Vec<Incoming>) -> Result<Option<u64>, DaemonError> {
        let (kept, dropped) = coalesce_frames(report_frames(run));
        self.note_coalesced(dropped);
        let t0 = Instant::now();
        let outcome = self.core.handle_report_batch(&kept)?;
        let Some(last_epoch) = outcome.last_epoch else {
            return Ok(None);
        };
        self.transact(outcome.directives, last_epoch)?;
        let took = t0.elapsed();
        obs::observe_duration("daemon.resolve_us", took);
        self.latencies.push(took);
        Ok(Some(last_epoch))
    }

    /// One directive transaction over TCP — the rig's `run_transaction`
    /// with socket writes for sends and the merged queue for receives.
    fn transact(&mut self, directives: Vec<Directive>, epoch: u64) -> Result<(), DaemonError> {
        let mut pending: Vec<PendingDirective> = Vec::new();
        self.enqueue(&mut pending, directives);
        while !pending.is_empty() {
            let now = Instant::now();
            let mut d = 0;
            while d < pending.len() {
                if pending[d].deadline > now {
                    d += 1;
                    continue;
                }
                if pending[d].attempt >= self.deadlines.ack_attempts {
                    let casualty = pending.remove(d).client;
                    // The dead client's load vanishes: re-optimize the
                    // survivors (may supersede other in-flight
                    // directives).
                    let replan = self.core.declare_dead(casualty)?;
                    self.enqueue(&mut pending, replan);
                    d = 0;
                } else {
                    let p = &mut pending[d];
                    p.attempt += 1;
                    self.retries += 1;
                    p.deadline = now + self.deadlines.backoff(p.attempt);
                    let (client, extender, seq, attempt) = (p.client, p.extender, p.seq, p.attempt);
                    self.send_directive(client, extender, seq, attempt);
                    d += 1;
                }
            }
            if pending.is_empty() {
                break;
            }
            let next = pending
                .iter()
                .map(|p| p.deadline)
                .min()
                .expect("pending is non-empty");
            let wait = next.saturating_duration_since(Instant::now());
            let mut drained = match self.recv_run(wait) {
                Ok(batch) => batch,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(TestbedError::ChannelClosed { endpoint: "client" }.into())
                }
            };
            if drained.len() > 1 {
                // A run of reports mid-transaction: retransmissions of
                // the current (or an older) event, consumed silently as
                // the single-message arm below does — minus the stale
                // copies, which count as coalesced.
                self.msgs_in += drained.len();
                let frames = report_frames(drained);
                if frames.iter().any(|f| f.epoch > epoch) {
                    return Err(TestbedError::AssignmentFailed {
                        context: "unexpected message during directive transaction".to_string(),
                    }
                    .into());
                }
                let (_, dropped) = coalesce_frames(frames);
                self.note_coalesced(dropped);
                continue;
            }
            let incoming = drained.pop().expect("drained run is never empty");
            match incoming {
                Incoming::Msg(ToController::Ack {
                    client,
                    seq,
                    extender,
                }) => {
                    self.msgs_in += 1;
                    if self.core.handle_ack(client, seq, extender) {
                        pending.retain(|p| !(p.client == client && p.seq == seq));
                    }
                }
                Incoming::Msg(ToController::Report { epoch: e, .. })
                | Incoming::Msg(ToController::Departed { epoch: e, .. }) => {
                    self.msgs_in += 1;
                    // Retransmissions of the current (or an older) event
                    // are expected; a genuinely new event mid-transaction
                    // means serialization broke.
                    if e > epoch {
                        return Err(TestbedError::AssignmentFailed {
                            context: "unexpected message during directive transaction".to_string(),
                        }
                        .into());
                    }
                }
                Incoming::Register { client, writer } => {
                    self.writers[client] = Some(writer);
                }
                Incoming::Gone { client } => {
                    // The ack deadline machinery turns a dead connection
                    // into a declared-dead client.
                    self.writers[client] = None;
                }
                Incoming::Stop { reason } => {
                    // Finish converging first; the driver stops after
                    // this event.
                    self.stop_reason.get_or_insert(reason);
                }
            }
        }
        Ok(())
    }

    /// Adds planned directives to the pending set (superseding in-flight
    /// ones for the same client) and performs their first transmission.
    fn enqueue(&mut self, pending: &mut Vec<PendingDirective>, directives: Vec<Directive>) {
        for dir in directives {
            pending.retain(|p| p.client != dir.client);
            pending.push(PendingDirective {
                client: dir.client,
                extender: dir.extender,
                seq: dir.seq,
                attempt: 1,
                deadline: Instant::now() + self.deadlines.backoff(1),
            });
            self.send_directive(dir.client, dir.extender, dir.seq, 1);
        }
    }

    /// Sends one directive transmission; a broken pipe drops the writer
    /// and lets the ack machinery handle the silence.
    fn send_directive(&mut self, client: usize, extender: usize, seq: u64, attempt: u32) {
        let env = Envelope::Client(ToClient::Directive {
            extender,
            seq,
            attempt,
        });
        if let Some(w) = self.writers[client].as_mut() {
            match wire::send_counted(w, &env) {
                Ok(sent) => note_frame_out(sent),
                Err(_) => self.writers[client] = None,
            }
        }
    }

    /// Sends one harness command; `false` when the client has no usable
    /// connection.
    fn send_agent(&mut self, client: usize, cmd: &ToAgent) -> bool {
        let env = Envelope::Agent(cmd.clone());
        match self.writers[client].as_mut() {
            Some(w) => match wire::send_counted(w, &env) {
                Ok(sent) => {
                    note_frame_out(sent);
                    true
                }
                Err(_) => {
                    self.writers[client] = None;
                    false
                }
            },
            None => false,
        }
    }

    /// Tells every connected agent to exit (so sockets close and reader
    /// tasks drain) and flushes the writers.
    fn shutdown_agents(&mut self) {
        for w in self.writers.iter_mut().flatten() {
            if let Ok(sent) = wire::send_counted(w, &Envelope::Agent(ToAgent::Shutdown)) {
                note_frame_out(sent);
            }
            let _ = w.flush();
        }
    }
}
