//! The agent client: one laptop's user-space utility, speaking the
//! daemon's wire protocol over TCP.
//!
//! This is the networked twin of the rig's in-process `client_agent`
//! thread, minus the fault layer: scan on join (strongest signal =
//! highest achievable rate, ties toward the lowest extender index),
//! report rates to the controller, apply directives newest-sequence-wins
//! and ack every received transmission. A reconnecting agent adopts the
//! attachment the daemon hands back in the handshake — the radio stayed
//! associated while the controller was down.

use std::net::{TcpStream, ToSocketAddrs};

use wolt_sim::Scenario;
use wolt_testbed::protocol::{ToAgent, ToClient, ToController};
use wolt_units::Mbps;

use crate::wire::{self, Envelope};
use crate::DaemonError;

/// What the agent observed, returned when the daemon dismisses it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentOutcome {
    /// The extender the agent is attached to at exit (None if departed).
    pub attached: Option<usize>,
    /// Directives applied (newest-sequence transmissions only).
    pub directives_applied: usize,
}

/// Runs one agent to completion: connect, handshake, then serve
/// join/leave commands and directives until the daemon says shutdown or
/// closes the connection.
///
/// `client` is this agent's index in `scenario`; the scenario must be
/// the same one the daemon runs (both sides regenerate it from the same
/// seed), since the agent's scan rates come from it.
///
/// # Errors
///
/// [`DaemonError::Io`] when the daemon cannot be reached or the
/// connection drops mid-frame; [`DaemonError::InvalidConfig`] for an
/// out-of-range client index; [`DaemonError::Protocol`] when the daemon
/// violates the handshake.
pub fn run_agent(
    addr: impl ToSocketAddrs,
    scenario: &Scenario,
    client: usize,
    name: &str,
) -> Result<AgentOutcome, DaemonError> {
    let n_users = scenario.user_positions.len();
    let n_ext = scenario.extender_positions.len();
    if client >= n_users {
        return Err(DaemonError::InvalidConfig {
            context: format!("client {client} out of range for {n_users} users"),
        });
    }
    let rates: Vec<Option<Mbps>> = (0..n_ext).map(|j| scenario.rate(client, j)).collect();

    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    wire::send(
        &mut stream,
        &Envelope::Hello {
            client,
            name: name.to_string(),
        },
    )?;
    let mut attached = match wire::recv(&mut stream)? {
        Some(Envelope::HelloAck { attached }) => attached,
        other => {
            return Err(DaemonError::Protocol {
                context: format!("expected hello_ack, got {other:?}"),
            })
        }
    };
    // A restored attachment means this client was mid-session when the
    // controller died: the radio is still associated.
    let mut joined = attached.is_some();
    let mut last_applied: Option<u64> = None;
    let mut directives_applied = 0usize;

    // Serve until the daemon says shutdown or closes the connection.
    while let Some(envelope) = wire::recv(&mut stream)? {
        match envelope {
            Envelope::Agent(ToAgent::Join { epoch, attempt: _ }) => {
                if !joined {
                    // Scan: strongest signal = highest achievable rate
                    // (monotone table); ties break toward the lowest
                    // extender index, matching the offline RSSI baseline.
                    let mut best = 0usize;
                    let mut best_rate = f64::NEG_INFINITY;
                    for (j, r) in rates.iter().enumerate() {
                        if let Some(m) = r {
                            if m.value() > best_rate {
                                best_rate = m.value();
                                best = j;
                            }
                        }
                    }
                    attached = Some(best);
                    joined = true;
                    last_applied = None;
                }
                // Retransmitted joins re-send the report without
                // re-scanning, so an applied directive is never
                // clobbered.
                wire::send(
                    &mut stream,
                    &Envelope::Ctrl(ToController::Report {
                        client,
                        epoch,
                        rates: rates.clone(),
                        attached: attached.expect("joined agent is attached"),
                    }),
                )?;
            }
            Envelope::Agent(ToAgent::Leave { epoch, attempt: _ }) => {
                if joined {
                    joined = false;
                    attached = None;
                }
                // Always (re-)notify: the CC dedups by epoch.
                wire::send(
                    &mut stream,
                    &Envelope::Ctrl(ToController::Departed { client, epoch }),
                )?;
            }
            Envelope::Agent(ToAgent::Shutdown)
            | Envelope::Client(ToClient::Shutdown)
            | Envelope::Shutdown { .. } => break,
            Envelope::Client(ToClient::Directive {
                extender,
                seq,
                attempt: _,
            }) => {
                // A directive can race a departure at shutdown; only a
                // joined client applies it.
                if !joined {
                    continue;
                }
                if last_applied.is_none_or(|s| seq > s) {
                    attached = Some(extender);
                    last_applied = Some(seq);
                    directives_applied += 1;
                }
                // Ack every received transmission (idempotent at the
                // CC); report the *current* attachment.
                wire::send(
                    &mut stream,
                    &Envelope::Ctrl(ToController::Ack {
                        client,
                        seq,
                        extender: attached.expect("joined agent is attached"),
                    }),
                )?;
            }
            other => {
                return Err(DaemonError::Protocol {
                    context: format!("unexpected envelope for an agent: {other:?}"),
                })
            }
        }
    }
    Ok(AgentOutcome {
        attached,
        directives_applied,
    })
}
