//! The agent client: one laptop's user-space utility, speaking the
//! daemon's wire protocol over TCP.
//!
//! This is the networked twin of the rig's in-process `client_agent`
//! thread, minus the fault layer: scan on join (strongest signal =
//! highest achievable rate, ties toward the lowest extender index),
//! report rates to the controller, apply directives newest-sequence-wins
//! and ack every received transmission. A reconnecting agent adopts the
//! attachment the daemon hands back in the handshake — the radio stayed
//! associated while the controller was down.
//!
//! The agent *expects* the controller to flap: a failed connect, a
//! [`Envelope::Busy`] refusal, or a connection lost mid-session all feed
//! the same bounded, seeded-jitter backoff loop ([`AgentRetry`]) before
//! the agent reconnects and re-adopts whatever state the (possibly
//! rolled-back) controller hands it. Only an exhausted budget surfaces,
//! as the typed [`DaemonError::GaveUp`].

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

use wolt_sim::Scenario;
use wolt_support::obs;
use wolt_support::rng::{RngCore as _, SplitMix64};
use wolt_testbed::protocol::{ToAgent, ToClient, ToController};
use wolt_units::Mbps;

use crate::wire::{self, Envelope};
use crate::DaemonError;

/// Reconnect policy: bounded exponential backoff with seeded jitter.
#[derive(Debug, Clone)]
pub struct AgentRetry {
    /// Connect attempts per reconnect round before giving up with
    /// [`DaemonError::GaveUp`] (at least 1).
    pub attempts: u32,
    /// Backoff after the first failed attempt; doubles per attempt.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub cap: Duration,
    /// Jitter seed. The wait is scaled by a factor in `[0.5, 1.0)`
    /// derived from `(seed, client, attempt)`, so a fleet of agents
    /// retrying after the same controller crash desynchronizes instead
    /// of stampeding — deterministically, given their seeds.
    pub seed: u64,
}

impl Default for AgentRetry {
    fn default() -> Self {
        Self {
            attempts: 10,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            seed: 0,
        }
    }
}

impl AgentRetry {
    /// The wait after failed attempt `attempt` (1-based): a jittered
    /// fraction in `[0.5, 1.0)` of `capped = min(base · 2^(attempt−1),
    /// cap)`.
    ///
    /// Computed in integer nanoseconds so both documented bounds hold
    /// *exactly*: the doubling saturates (never wraps or stalls below
    /// `cap`, even past the old 20-bit shift boundary or from a
    /// sub-millisecond `base`), and the jittered wait can never round up
    /// to `capped` itself the way `mul_f64` could.
    fn backoff(&self, client: usize, attempt: u32) -> Duration {
        let base = self.base.as_nanos().max(1);
        let cap = self.cap.as_nanos().max(1);
        let shift = attempt.saturating_sub(1);
        let doubled = if shift >= base.leading_zeros() {
            u128::MAX
        } else {
            base << shift
        };
        let capped = doubled.min(cap);
        let mut mix = SplitMix64::new(self.seed ^ ((client as u64) << 32) ^ u64::from(attempt));
        // wait = half + floor(half · r / 2^64) ∈ [half, 2·half), i.e.
        // within [capped/2, capped) — strictly below the ceiling. The
        // product is split so a huge cap cannot overflow the u128.
        let half = capped / 2;
        let r = u128::from(mix.next_u64());
        let extra = (half >> 64) * r + (((half & u128::from(u64::MAX)) * r) >> 64);
        Duration::from_nanos(u64::try_from(half + extra).unwrap_or(u64::MAX))
    }
}

/// Whether a handshake failure is worth another attempt.
enum ConnectFailure {
    /// The daemon is down, restarting, or at its connection cap.
    Retryable(String),
    /// The peer is not a WOLT daemon (protocol violation): retrying
    /// cannot help.
    Fatal(DaemonError),
}

/// One connect + handshake; on success the agent holds an accepted
/// stream and the controller's view of its attachment.
fn connect_once(
    addr: &impl ToSocketAddrs,
    client: usize,
    name: &str,
    site: Option<&str>,
) -> Result<(TcpStream, Option<usize>), ConnectFailure> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| ConnectFailure::Retryable(format!("connect: {e}")))?;
    let _ = stream.set_nodelay(true);
    wire::send(
        &mut stream,
        &Envelope::Hello {
            client,
            name: name.to_string(),
            site: site.map(str::to_string),
        },
    )
    .map_err(|e| ConnectFailure::Retryable(format!("handshake send: {e}")))?;
    match wire::recv(&mut stream) {
        Ok(Some(Envelope::HelloAck { attached })) => Ok((stream, attached)),
        Ok(Some(Envelope::Busy { limit })) => Err(ConnectFailure::Retryable(
            DaemonError::Busy { limit }.to_string(),
        )),
        // A drained or removed site never comes back under this address:
        // retrying would spin against the refusal forever.
        Ok(Some(Envelope::SiteGone { site })) => {
            Err(ConnectFailure::Fatal(DaemonError::SiteGone { site }))
        }
        Ok(other) => Err(ConnectFailure::Fatal(DaemonError::Protocol {
            context: format!("expected hello_ack, got {other:?}"),
        })),
        Err(e) => Err(ConnectFailure::Retryable(format!("handshake recv: {e}"))),
    }
}

/// What the agent observed, returned when the daemon dismisses it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentOutcome {
    /// The extender the agent is attached to at exit (None if departed).
    pub attached: Option<usize>,
    /// Directives applied (newest-sequence transmissions only).
    pub directives_applied: usize,
}

/// Runs one agent to completion with the default reconnect policy: see
/// [`run_agent_with`].
///
/// # Errors
///
/// As [`run_agent_with`].
pub fn run_agent(
    addr: impl ToSocketAddrs,
    scenario: &Scenario,
    client: usize,
    name: &str,
) -> Result<AgentOutcome, DaemonError> {
    run_agent_with(addr, scenario, client, name, &AgentRetry::default())
}

/// Runs one agent against a *fleet*: identical to [`run_agent_with`],
/// but the hello names `site`, so a multi-site daemon can route the
/// connection to the segment that owns this client. A site-less hello
/// ([`run_agent`]/[`run_agent_with`]) and a single-site daemon remain
/// byte-compatible with each other; use this entry point only when the
/// server is a fleet.
///
/// # Errors
///
/// As [`run_agent_with`], plus [`DaemonError::SiteGone`] when the fleet
/// does not host (or no longer hosts) `site` — fatal, not retried,
/// because a drained or removed site never comes back under the same
/// address.
pub fn run_site_agent(
    addr: impl ToSocketAddrs,
    scenario: &Scenario,
    site: &str,
    client: usize,
    name: &str,
    retry: &AgentRetry,
) -> Result<AgentOutcome, DaemonError> {
    run_agent_sited(addr, scenario, Some(site), client, name, retry, 1)
}

/// Runs one agent to completion: connect (with `retry`'s bounded
/// backoff), handshake, then serve join/leave commands and directives
/// until the daemon dismisses it. A connection lost mid-session —
/// controller crash, restart, read-deadline kill — re-enters the same
/// backoff loop and resumes from whatever attachment the daemon's
/// (possibly rolled-back) state hands back in the new handshake.
///
/// `client` is this agent's index in `scenario`; the scenario must be
/// the same one the daemon runs (both sides regenerate it from the same
/// seed), since the agent's scan rates come from it.
///
/// # Errors
///
/// [`DaemonError::GaveUp`] when a reconnect round exhausts
/// `retry.attempts`; [`DaemonError::InvalidConfig`] for an out-of-range
/// client index; [`DaemonError::Protocol`] when the daemon violates the
/// handshake.
pub fn run_agent_with(
    addr: impl ToSocketAddrs,
    scenario: &Scenario,
    client: usize,
    name: &str,
    retry: &AgentRetry,
) -> Result<AgentOutcome, DaemonError> {
    run_agent_sited(addr, scenario, None, client, name, retry, 1)
}

/// Runs one agent that answers every join with a *burst* of `burst`
/// identical scan reports instead of one — a load-shape knob for
/// exercising the daemon's telemetry-coalescing path. Protocol-safe at
/// any burst size (the controller dedups repeated reports by epoch);
/// `burst <= 1` is byte-identical to [`run_agent_with`] /
/// [`run_site_agent`].
///
/// # Errors
///
/// As [`run_agent_with`] (and, when `site` is set,
/// [`run_site_agent`]).
pub fn run_agent_burst(
    addr: impl ToSocketAddrs,
    scenario: &Scenario,
    site: Option<&str>,
    client: usize,
    name: &str,
    retry: &AgentRetry,
    burst: u32,
) -> Result<AgentOutcome, DaemonError> {
    run_agent_sited(addr, scenario, site, client, name, retry, burst)
}

/// The shared agent loop behind [`run_agent_with`] (site-less),
/// [`run_site_agent`] (sited), and [`run_agent_burst`] (bursty).
fn run_agent_sited(
    addr: impl ToSocketAddrs,
    scenario: &Scenario,
    site: Option<&str>,
    client: usize,
    name: &str,
    retry: &AgentRetry,
    burst: u32,
) -> Result<AgentOutcome, DaemonError> {
    let n_users = scenario.user_positions.len();
    let n_ext = scenario.extender_positions.len();
    if client >= n_users {
        return Err(DaemonError::InvalidConfig {
            context: format!("client {client} out of range for {n_users} users"),
        });
    }
    let rates: Vec<Option<Mbps>> = (0..n_ext).map(|j| scenario.rate(client, j)).collect();
    let mut directives_applied = 0usize;
    loop {
        // Connect round: a fresh budget each time the agent has to go
        // back to dialing, so a controller that keeps crashing (and
        // keeps being restarted) never strands a patient agent.
        let attempts = retry.attempts.max(1);
        let mut connected = None;
        let mut last_error = String::new();
        for attempt in 1..=attempts {
            match connect_once(&addr, client, name, site) {
                Ok(ok) => {
                    connected = Some(ok);
                    break;
                }
                Err(ConnectFailure::Fatal(e)) => return Err(e),
                Err(ConnectFailure::Retryable(why)) => {
                    last_error = why;
                    if attempt < attempts {
                        obs::counter_inc("agent.reconnects");
                        thread::sleep(retry.backoff(client, attempt));
                    }
                }
            }
        }
        let Some((mut stream, attached)) = connected else {
            return Err(DaemonError::GaveUp {
                attempting: format!("connect to the daemon as client {client}"),
                attempts,
                last_error,
            });
        };
        match serve(
            &mut stream,
            client,
            attached,
            &rates,
            &mut directives_applied,
            burst,
        )? {
            ServeEnd::Dismissed(outcome) => return Ok(outcome),
            // The daemon vanished mid-session (crash, restart,
            // read-deadline kill): dial again.
            ServeEnd::Lost => {}
        }
    }
}

/// How one served connection ended.
enum ServeEnd {
    /// The daemon said shutdown: the agent is done.
    Dismissed(AgentOutcome),
    /// The connection died without a dismissal: reconnect.
    Lost,
}

/// Whether a receive failure means the connection died (retryable) as
/// opposed to the peer not speaking the protocol (fatal): a crashed or
/// restarting daemon yields resets and truncations, never well-framed
/// garbage.
fn recv_failure_is_lost(e: &io::Error) -> bool {
    e.kind() != io::ErrorKind::InvalidData
}

/// Serves one connection until the daemon dismisses the agent or the
/// connection is lost.
///
/// # Errors
///
/// [`DaemonError::Protocol`] when the peer sends a well-formed frame an
/// agent must never see — lost connections are a [`ServeEnd`], not an
/// error.
fn serve(
    stream: &mut TcpStream,
    client: usize,
    mut attached: Option<usize>,
    rates: &[Option<Mbps>],
    directives_applied: &mut usize,
    burst: u32,
) -> Result<ServeEnd, DaemonError> {
    // A restored attachment means this client was mid-session when the
    // controller died: the radio is still associated.
    let mut joined = attached.is_some();
    let mut last_applied: Option<u64> = None;

    // Serve until the daemon says shutdown or the connection ends.
    loop {
        let envelope = match wire::recv(stream) {
            Ok(Some(envelope)) => envelope,
            // EOF without a dismissal is a dead daemon, not a goodbye.
            Ok(None) => return Ok(ServeEnd::Lost),
            Err(e) if recv_failure_is_lost(&e) => return Ok(ServeEnd::Lost),
            Err(e) => {
                return Err(DaemonError::Protocol {
                    context: format!("agent receive: {e}"),
                })
            }
        };
        let sent = match envelope {
            Envelope::Agent(ToAgent::Join { epoch, attempt: _ }) => {
                if !joined {
                    // Scan: strongest signal = highest achievable rate
                    // (monotone table); ties break toward the lowest
                    // extender index, matching the offline RSSI baseline.
                    let mut best = 0usize;
                    let mut best_rate = f64::NEG_INFINITY;
                    for (j, r) in rates.iter().enumerate() {
                        if let Some(m) = r {
                            if m.value() > best_rate {
                                best_rate = m.value();
                                best = j;
                            }
                        }
                    }
                    attached = Some(best);
                    joined = true;
                    last_applied = None;
                }
                // Retransmitted joins re-send the report without
                // re-scanning, so an applied directive is never
                // clobbered. A bursty agent repeats the same report:
                // the extras are redundant by construction (same epoch),
                // which is exactly what coalescing should absorb.
                let report = Envelope::Ctrl(ToController::Report {
                    client,
                    epoch,
                    rates: rates.to_vec(),
                    attached: attached.expect("joined agent is attached"),
                });
                let mut sent = wire::send(stream, &report);
                for _ in 1..burst.max(1) {
                    if sent.is_err() {
                        break;
                    }
                    sent = wire::send(stream, &report);
                }
                sent
            }
            Envelope::Agent(ToAgent::Leave { epoch, attempt: _ }) => {
                if joined {
                    joined = false;
                    attached = None;
                }
                // Always (re-)notify: the CC dedups by epoch.
                wire::send(
                    stream,
                    &Envelope::Ctrl(ToController::Departed { client, epoch }),
                )
            }
            Envelope::Agent(ToAgent::Shutdown)
            | Envelope::Client(ToClient::Shutdown)
            | Envelope::Shutdown { .. } => {
                return Ok(ServeEnd::Dismissed(AgentOutcome {
                    attached,
                    directives_applied: *directives_applied,
                }))
            }
            Envelope::Client(ToClient::Directive {
                extender,
                seq,
                attempt: _,
            }) => {
                // A directive can race a departure at shutdown; only a
                // joined client applies it.
                if !joined {
                    continue;
                }
                if last_applied.is_none_or(|s| seq > s) {
                    attached = Some(extender);
                    last_applied = Some(seq);
                    *directives_applied += 1;
                }
                // Ack every received transmission (idempotent at the
                // CC); report the *current* attachment.
                wire::send(
                    stream,
                    &Envelope::Ctrl(ToController::Ack {
                        client,
                        seq,
                        extender: attached.expect("joined agent is attached"),
                    }),
                )
            }
            other => {
                return Err(DaemonError::Protocol {
                    context: format!("unexpected envelope for an agent: {other:?}"),
                })
            }
        };
        if sent.is_err() {
            return Ok(ServeEnd::Lost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retry(base: Duration, cap: Duration) -> AgentRetry {
        AgentRetry {
            attempts: 10,
            base,
            cap,
            seed: 0xC0FFEE,
        }
    }

    /// The ceiling `capped = min(base · 2^(attempt−1), cap)` without
    /// jitter, mirroring the documented contract.
    fn ceiling(r: &AgentRetry, attempt: u32) -> Duration {
        let base = r.base.as_nanos().max(1);
        let shift = attempt.saturating_sub(1);
        let doubled = if shift >= base.leading_zeros() {
            u128::MAX
        } else {
            base << shift
        };
        Duration::from_nanos(
            u64::try_from(doubled.min(r.cap.as_nanos().max(1))).unwrap_or(u64::MAX),
        )
    }

    #[test]
    fn backoff_stays_in_documented_jitter_range() {
        let r = retry(Duration::from_millis(25), Duration::from_secs(1));
        for client in 0..16 {
            for attempt in 1..=64 {
                let capped = ceiling(&r, attempt);
                let wait = r.backoff(client, attempt);
                assert!(
                    wait >= capped / 2 && wait < capped,
                    "client {client} attempt {attempt}: {wait:?} outside [{:?}, {capped:?})",
                    capped / 2
                );
            }
        }
    }

    #[test]
    fn backoff_honors_cap_past_the_shift_boundary() {
        // A sub-millisecond base needs > 20 doublings to reach a 1 s
        // cap; the old 20-bit shift clamp stalled it at ~105 ms forever.
        let r = retry(Duration::from_nanos(100), Duration::from_secs(1));
        for attempt in [21, 24, 25, 40, 64, u32::MAX] {
            let wait = r.backoff(3, attempt);
            assert!(wait < r.cap, "attempt {attempt}: {wait:?} >= cap");
        }
        // Once doubled past the cap, the jittered wait must reach the
        // cap's range — at least cap/2.
        for attempt in [25, 40, 64, u32::MAX] {
            let wait = r.backoff(3, attempt);
            assert!(
                wait >= r.cap / 2,
                "attempt {attempt}: {wait:?} never reached the cap range"
            );
        }
    }

    #[test]
    fn backoff_never_equals_the_ceiling_exactly() {
        // mul_f64's rounding could return `capped` itself, violating the
        // strict upper bound; integer math cannot.
        let r = retry(Duration::from_secs(1), Duration::from_secs(1));
        for client in 0..64 {
            for attempt in 1..=8 {
                assert!(r.backoff(client, attempt) < ceiling(&r, attempt));
            }
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed_client_attempt() {
        let r = retry(Duration::from_millis(25), Duration::from_secs(1));
        assert_eq!(r.backoff(2, 3), r.backoff(2, 3));
        assert_ne!(r.backoff(2, 3), r.backoff(3, 3));
        let other = AgentRetry {
            seed: 1,
            ..r.clone()
        };
        assert_ne!(r.backoff(2, 3), other.backoff(2, 3));
    }

    #[test]
    fn backoff_survives_degenerate_durations() {
        // Zero base/cap clamp to 1 ns rather than dividing by zero or
        // wrapping; huge caps saturate instead of overflowing.
        let r = retry(Duration::ZERO, Duration::ZERO);
        assert!(r.backoff(0, 1) <= Duration::from_nanos(1));
        // A cap beyond u64 nanoseconds saturates the returned Duration
        // at u64::MAX ns (~584 years) instead of wrapping.
        let huge = retry(Duration::from_secs(u64::MAX), Duration::MAX);
        let wait = huge.backoff(0, u32::MAX);
        assert_eq!(wait, Duration::from_nanos(u64::MAX));
    }
}
