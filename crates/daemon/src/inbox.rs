//! The session loop's bounded inbox: a multi-producer, single-consumer
//! queue with a deterministic overload-shedding policy.
//!
//! The reader tasks used to feed the session loop through an unbounded
//! `std::sync::mpsc` channel, so one flooding connection could grow the
//! queue (and the daemon's memory) without limit while the single-owner
//! session loop fell further and further behind. This inbox bounds the
//! queue and sheds under pressure — but only *telemetry*: a dropped
//! scan report is recovered by the harness's retransmission schedule,
//! whereas a dropped ack would stall a directive transaction into a
//! false declared-dead, and a dropped register/stop would wedge the
//! session. The policy is pure queue-state logic (no clocks, no
//! randomness): when full, the oldest sheddable entry makes room; if
//! nothing queued is sheddable and the newcomer is, the newcomer is
//! shed; lifecycle messages are always admitted even past the cap
//! (their count is bounded by the protocol, not by a flooder).
//!
//! Every shed increments `daemon.frames_shed`, so a scripted load test
//! can assert exact counts — the policy has no timing dependence.

use std::collections::VecDeque;
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use wolt_support::obs;

/// The receiver hung up: the session loop is gone and the message was
/// not enqueued (mirroring `mpsc::SendError`, minus the payload).
#[derive(Debug, PartialEq, Eq)]
pub struct SendError;

struct State<T> {
    queue: VecDeque<(bool, T)>,
    senders: usize,
    receiver_alive: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    /// Queue bound; `0` disables bounding (and therefore shedding).
    cap: usize,
    /// Whether an entry may be shed under pressure.
    sheddable: fn(&T) -> bool,
}

/// Creates a bounded inbox. `cap == 0` means unbounded; `sheddable`
/// classifies entries the shed policy may drop.
pub fn channel<T>(cap: usize, sheddable: fn(&T) -> bool) -> (InboxSender<T>, Inbox<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        available: Condvar::new(),
        cap,
        sheddable,
    });
    (
        InboxSender {
            shared: Arc::clone(&shared),
        },
        Inbox { shared },
    )
}

/// The producer half; clonable, one per reader task.
pub struct InboxSender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> InboxSender<T> {
    /// Enqueues `msg`, applying the shed policy when the queue is at
    /// capacity. `Err(SendError)` means the receiver is gone (mirroring
    /// `mpsc::Sender::send`); `Ok(shed)` reports whether an entry was
    /// shed to admit (or in place of) this message.
    pub fn send(&self, msg: T) -> Result<bool, SendError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.receiver_alive {
            return Err(SendError);
        }
        let msg_sheddable = (self.shared.sheddable)(&msg);
        let mut shed = false;
        if self.shared.cap > 0 && state.queue.len() >= self.shared.cap {
            if let Some(oldest) = state.queue.iter().position(|(s, _)| *s) {
                // Shed the oldest queued telemetry to make room.
                state.queue.remove(oldest);
                shed = true;
            } else if msg_sheddable {
                // Nothing queued may be shed; the newcomer is telemetry,
                // so it is the one that yields.
                obs::counter_inc("daemon.frames_shed");
                return Ok(true);
            }
            // Otherwise: a lifecycle message rides in past the cap —
            // their volume is bounded by the protocol itself.
        }
        state.queue.push_back((msg_sheddable, msg));
        drop(state);
        if shed {
            obs::counter_inc("daemon.frames_shed");
        }
        self.shared.available.notify_one();
        Ok(shed)
    }
}

impl<T> Clone for InboxSender<T> {
    fn clone(&self) -> Self {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders += 1;
        drop(state);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for InboxSender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            // Wake a receiver blocked on an empty queue so it observes
            // the disconnect.
            self.shared.available.notify_all();
        }
    }
}

/// The consumer half (the session loop).
pub struct Inbox<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Inbox<T> {
    /// Blocks for the next message, up to `timeout`. The error cases
    /// mirror `mpsc::Receiver::recv_timeout`: `Timeout` when the window
    /// expires, `Disconnected` when every sender is gone and the queue
    /// is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((_, msg)) = state.queue.pop_front() {
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let wait = deadline.saturating_duration_since(Instant::now());
            if wait.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, result) = self
                .shared
                .available
                .wait_timeout(state, wait)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
            if result.timed_out() && state.queue.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Blocks for the next message like [`recv_timeout`](Self::recv_timeout),
    /// then — only if that first message satisfies `batchable` — drains
    /// the run of *consecutive* already-queued batchable messages after
    /// it, all under one lock acquisition. The drain is structural
    /// (whatever is queued right now), never time-based: it stops at the
    /// first non-batchable message, which stays queued, so lifecycle
    /// ordering is untouched and an empty-beyond-the-first queue yields
    /// a batch of one — the same message, in the same order, that
    /// `recv_timeout` would have delivered.
    ///
    /// # Errors
    ///
    /// As [`recv_timeout`](Self::recv_timeout); the returned batch is
    /// never empty.
    pub fn recv_batch_timeout(
        &self,
        timeout: Duration,
        batchable: fn(&T) -> bool,
    ) -> Result<Vec<T>, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((_, msg)) = state.queue.pop_front() {
                let mut batch = vec![msg];
                if batchable(&batch[0]) {
                    while state.queue.front().is_some_and(|(_, m)| batchable(m)) {
                        let (_, m) = state.queue.pop_front().expect("front just checked");
                        batch.push(m);
                    }
                }
                return Ok(batch);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let wait = deadline.saturating_duration_since(Instant::now());
            if wait.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, result) = self
                .shared
                .available
                .wait_timeout(state, wait)
                .unwrap_or_else(|e| e.into_inner());
            state = next;
            if result.timed_out() && state.queue.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Messages currently queued (for teardown diagnostics and tests).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }
}

impl<T> Drop for Inbox<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.receiver_alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn odd_is_sheddable(n: &u32) -> bool {
        *n % 2 == 1
    }

    #[test]
    fn unbounded_inbox_never_sheds() {
        let (tx, rx) = channel::<u32>(0, odd_is_sheddable);
        for i in 0..1000 {
            assert!(!tx.send(i).unwrap());
        }
        assert_eq!(rx.len(), 1000);
    }

    #[test]
    fn sheds_oldest_sheddable_first_exactly() {
        let (tx, rx) = channel::<u32>(4, odd_is_sheddable);
        // Fill: [1, 2, 3, 4] — 1 and 3 sheddable.
        for i in 1..=4 {
            assert!(!tx.send(i).unwrap());
        }
        // Over cap: 5 admits by shedding 1; 6 admits by shedding 3.
        assert!(tx.send(5).unwrap());
        assert!(tx.send(6).unwrap());
        // Queue is [2, 4, 5, 6]; only 5 is sheddable now, so 7 sheds it.
        assert!(tx.send(7).unwrap());
        let drained: Vec<u32> =
            std::iter::from_fn(|| rx.recv_timeout(Duration::ZERO).ok()).collect();
        assert_eq!(drained, vec![2, 4, 6, 7]);
    }

    #[test]
    fn newcomer_is_shed_when_nothing_queued_may_be() {
        let (tx, rx) = channel::<u32>(2, odd_is_sheddable);
        assert!(!tx.send(2).unwrap());
        assert!(!tx.send(4).unwrap());
        // Full of unsheddable entries: a telemetry newcomer is dropped…
        assert!(tx.send(9).unwrap());
        // …but a lifecycle newcomer is admitted past the cap.
        assert!(!tx.send(6).unwrap());
        let drained: Vec<u32> =
            std::iter::from_fn(|| rx.recv_timeout(Duration::ZERO).ok()).collect();
        assert_eq!(drained, vec![2, 4, 6]);
    }

    #[test]
    fn disconnect_and_timeout_mirror_mpsc() {
        let (tx, rx) = channel::<u32>(0, odd_is_sheddable);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn batch_recv_drains_only_consecutive_batchable_runs() {
        let (tx, rx) = channel::<u32>(0, odd_is_sheddable);
        // Queue: [1, 3, 2, 5, 7] — odd is batchable here too.
        for n in [1, 3, 2, 5, 7] {
            tx.send(n).unwrap();
        }
        // First message odd → drains the odd run, stops before 2.
        assert_eq!(
            rx.recv_batch_timeout(Duration::ZERO, odd_is_sheddable),
            Ok(vec![1, 3])
        );
        // First message even → a batch of exactly one, run untouched.
        assert_eq!(
            rx.recv_batch_timeout(Duration::ZERO, odd_is_sheddable),
            Ok(vec![2])
        );
        assert_eq!(
            rx.recv_batch_timeout(Duration::ZERO, odd_is_sheddable),
            Ok(vec![5, 7])
        );
        assert_eq!(
            rx.recv_batch_timeout(Duration::from_millis(2), odd_is_sheddable),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn batch_recv_mirrors_recv_timeout_errors() {
        let (tx, rx) = channel::<u32>(0, odd_is_sheddable);
        assert_eq!(
            rx.recv_batch_timeout(Duration::from_millis(2), odd_is_sheddable),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(
            rx.recv_batch_timeout(Duration::from_millis(2), odd_is_sheddable),
            Ok(vec![9])
        );
        assert_eq!(
            rx.recv_batch_timeout(Duration::from_millis(2), odd_is_sheddable),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = channel::<u32>(0, odd_is_sheddable);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError));
    }

    #[test]
    fn cross_thread_delivery_preserves_order_per_sender() {
        let (tx, rx) = channel::<u32>(0, odd_is_sheddable);
        let producer = thread::spawn(move || {
            for i in 0..500 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while got.len() < 500 {
            got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }
}
