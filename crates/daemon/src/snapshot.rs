//! Daemon state persistence: the controller's decision state plus the
//! session driver's bookkeeping, written as canonical JSON after every
//! completed epoch and restored on restart.
//!
//! The snapshot is everything a restarted daemon needs to resume exactly
//! where the dead one stopped: the [`ControllerSnapshot`] (telemetry,
//! association view, sequence counters) and the driver ledger (which
//! events completed, who is present, the initial attachments used for
//! switch counting). Because `wolt_support::json` is deterministic, two
//! snapshots of equal state are byte-identical on disk.
//!
//! This module owns the snapshot's *shape*; durability lives in the
//! generational [`crate::store::SnapshotStore`], which writes each
//! snapshot as a fresh checksummed `snapshot.<gen>.json` and rolls back
//! over torn or corrupt generations at load time.

use wolt_support::json::{FromJson, Json, JsonError, ToJson};
use wolt_testbed::ControllerSnapshot;

/// The persisted daemon state.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonSnapshot {
    /// Events completed so far; the daemon resumes at this index.
    pub epochs_done: usize,
    /// Per-client presence (joined and not departed) at snapshot time.
    pub present: Vec<bool>,
    /// Per-client unresponsiveness at snapshot time.
    pub unresponsive: Vec<bool>,
    /// Each client's first post-join attachment (for switch counting).
    pub initial_attach: Vec<Option<usize>>,
    /// Retransmissions so far (timing-dependent bookkeeping, excluded
    /// from canonical reports but carried for observability).
    pub retries: usize,
    /// The controller's full decision state.
    pub core: ControllerSnapshot,
}

impl ToJson for DaemonSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("epochs_done", self.epochs_done.to_json()),
            ("present", self.present.to_json()),
            ("unresponsive", self.unresponsive.to_json()),
            ("initial_attach", self.initial_attach.to_json()),
            ("retries", self.retries.to_json()),
            ("core", self.core.to_json()),
        ])
    }
}

impl FromJson for DaemonSnapshot {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            epochs_done: usize::from_json(value.field("epochs_done")?)?,
            present: Vec::<bool>::from_json(value.field("present")?)?,
            unresponsive: Vec::<bool>::from_json(value.field("unresponsive")?)?,
            initial_attach: Vec::<Option<usize>>::from_json(value.field("initial_attach")?)?,
            retries: usize::from_json(value.field("retries")?)?,
            core: ControllerSnapshot::from_json(value.field("core")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_testbed::{ControllerConfig, ControllerCore, ControllerPolicy};
    use wolt_units::Mbps;

    fn sample() -> DaemonSnapshot {
        let mut core = ControllerCore::new(
            2,
            ControllerConfig {
                policy: ControllerPolicy::Wolt,
                estimated_capacities: vec![Mbps::new(50.0), Mbps::new(30.0)],
                strict: false,
            },
        );
        core.handle_report(0, 0, &[Some(Mbps::new(20.0)), Some(Mbps::new(5.0))], 0)
            .unwrap();
        DaemonSnapshot {
            epochs_done: 1,
            present: vec![true, false],
            unresponsive: vec![false, false],
            initial_attach: vec![Some(0), None],
            retries: 3,
            core: core.snapshot(),
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample();
        let text = snap.to_json().to_compact();
        let back = DaemonSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        // Canonical encoder: equal state, identical bytes.
        assert_eq!(back.to_json().to_compact(), text);
    }
}
