//! Daemon state persistence: the controller's decision state plus the
//! session driver's bookkeeping, written as canonical JSON after every
//! completed epoch and restored on restart.
//!
//! The snapshot is everything a restarted daemon needs to resume exactly
//! where the dead one stopped: the [`ControllerSnapshot`] (telemetry,
//! association view, sequence counters) and the driver ledger (which
//! events completed, who is present, the initial attachments used for
//! switch counting). Because `wolt_support::json` is deterministic, two
//! snapshots of equal state are byte-identical on disk.

use std::fs;
use std::io;
use std::path::Path;

use wolt_support::json::{FromJson, Json, JsonError, ToJson};
use wolt_testbed::ControllerSnapshot;

use crate::DaemonError;

/// The persisted daemon state.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonSnapshot {
    /// Events completed so far; the daemon resumes at this index.
    pub epochs_done: usize,
    /// Per-client presence (joined and not departed) at snapshot time.
    pub present: Vec<bool>,
    /// Per-client unresponsiveness at snapshot time.
    pub unresponsive: Vec<bool>,
    /// Each client's first post-join attachment (for switch counting).
    pub initial_attach: Vec<Option<usize>>,
    /// Retransmissions so far (timing-dependent bookkeeping, excluded
    /// from canonical reports but carried for observability).
    pub retries: usize,
    /// The controller's full decision state.
    pub core: ControllerSnapshot,
}

impl ToJson for DaemonSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            ("epochs_done", self.epochs_done.to_json()),
            ("present", self.present.to_json()),
            ("unresponsive", self.unresponsive.to_json()),
            ("initial_attach", self.initial_attach.to_json()),
            ("retries", self.retries.to_json()),
            ("core", self.core.to_json()),
        ])
    }
}

impl FromJson for DaemonSnapshot {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            epochs_done: usize::from_json(value.field("epochs_done")?)?,
            present: Vec::<bool>::from_json(value.field("present")?)?,
            unresponsive: Vec::<bool>::from_json(value.field("unresponsive")?)?,
            initial_attach: Vec::<Option<usize>>::from_json(value.field("initial_attach")?)?,
            retries: usize::from_json(value.field("retries")?)?,
            core: ControllerSnapshot::from_json(value.field("core")?)?,
        })
    }
}

impl DaemonSnapshot {
    /// Writes the snapshot atomically: serialize to a sibling temp file,
    /// then rename over the target, so a crash mid-write never leaves a
    /// truncated snapshot behind.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(&self, path: &Path) -> Result<(), DaemonError> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_json().to_compact())?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a snapshot, or `Ok(None)` when the file does not exist yet
    /// (a cold start).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; a present-but-malformed snapshot
    /// is [`DaemonError::Protocol`], not silently ignored.
    pub fn load(path: &Path) -> Result<Option<Self>, DaemonError> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let json = Json::parse(&text).map_err(|e| DaemonError::Protocol {
            context: format!("corrupt snapshot {}: {e}", path.display()),
        })?;
        DaemonSnapshot::from_json(&json)
            .map(Some)
            .map_err(|e| DaemonError::Protocol {
                context: format!("corrupt snapshot {}: {e}", path.display()),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_testbed::{ControllerConfig, ControllerCore, ControllerPolicy};
    use wolt_units::Mbps;

    fn sample() -> DaemonSnapshot {
        let mut core = ControllerCore::new(
            2,
            ControllerConfig {
                policy: ControllerPolicy::Wolt,
                estimated_capacities: vec![Mbps::new(50.0), Mbps::new(30.0)],
                strict: false,
            },
        );
        core.handle_report(0, 0, &[Some(Mbps::new(20.0)), Some(Mbps::new(5.0))], 0)
            .unwrap();
        DaemonSnapshot {
            epochs_done: 1,
            present: vec![true, false],
            unresponsive: vec![false, false],
            initial_attach: vec![Some(0), None],
            retries: 3,
            core: core.snapshot(),
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample();
        let text = snap.to_json().to_compact();
        let back = DaemonSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        // Canonical encoder: equal state, identical bytes.
        assert_eq!(back.to_json().to_compact(), text);
    }

    #[test]
    fn save_load_round_trips_and_missing_file_is_none() {
        let dir = std::env::temp_dir().join("wolt-daemon-snap-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let _ = fs::remove_file(&path);
        assert!(DaemonSnapshot::load(&path).unwrap().is_none());
        let snap = sample();
        snap.save(&path).unwrap();
        assert_eq!(DaemonSnapshot::load(&path).unwrap(), Some(snap));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_a_cold_start() {
        let dir = std::env::temp_dir().join("wolt-daemon-snap-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        fs::write(&path, "{not json").unwrap();
        assert!(matches!(
            DaemonSnapshot::load(&path),
            Err(DaemonError::Protocol { .. })
        ));
        fs::remove_file(&path).unwrap();
    }
}
