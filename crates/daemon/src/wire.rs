//! The daemon's wire envelope: the protocol enums of
//! [`wolt_testbed::protocol`] plus the connection-level messages TCP
//! needs (handshake, restore handoff, operator shutdown).
//!
//! The in-process rig needs no handshake — channel identity *is* client
//! identity. Over TCP the daemon learns who connected from the first
//! frame ([`Envelope::Hello`]) and answers with the client's last known
//! attachment ([`Envelope::HelloAck`]), which is how a restarted daemon
//! hands a reconnecting agent its pre-crash state (the data plane — the
//! radio association — survives a controller reboot).
//!
//! Every envelope serializes to a `{"t": ...}` tagged object through the
//! deterministic `wolt_support::json` encoder and travels as one
//! length-prefixed frame (see [`wolt_testbed::codec`]).

use std::io::{self, Read, Write};

use wolt_support::json::{FromJson, Json, JsonError, ToJson};
use wolt_support::obs::ObsSnapshot;
use wolt_testbed::codec::{
    read_frame_counted, read_frame_counted_patient, write_frame_counted, ReadPatience,
};
use wolt_testbed::protocol::{ToAgent, ToClient, ToController};

/// One daemon wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// First frame on every agent connection: who is calling. `name` is a
    /// free-form label for logs (it may contain any Unicode, including
    /// control characters — the codec must round-trip it untouched).
    Hello {
        /// Client index in the scenario.
        client: usize,
        /// Free-form agent label.
        name: String,
        /// The site this agent belongs to. `None` addresses a
        /// single-site daemon; a fleet requires it and refuses a
        /// missing or unknown site with [`Envelope::SiteGone`]. The
        /// field is omitted from the frame when `None`, so a sited
        /// hello is byte-identical to the pre-fleet handshake.
        site: Option<String>,
    },
    /// The daemon's handshake reply: the client's attachment according to
    /// the (possibly restored) controller state, which the agent adopts.
    HelloAck {
        /// Saved extender attachment, if the controller knows one.
        attached: Option<usize>,
    },
    /// The daemon's overload refusal, sent in place of any other reply
    /// when a new connection arrives past the configured connection cap.
    /// The peer should back off and retry; the daemon closes the
    /// connection after sending it.
    Busy {
        /// The daemon's configured connection limit.
        limit: u64,
    },
    /// An agent → controller protocol message.
    Ctrl(ToController),
    /// A controller → client directive or shutdown.
    Client(ToClient),
    /// A session-driver command (join/leave/shutdown).
    Agent(ToAgent),
    /// Operator request: snapshot and stop the daemon gracefully.
    Shutdown {
        /// Free-form reason, echoed into the daemon's logs.
        reason: String,
    },
    /// Operator request: reply with the daemon's metrics snapshot.
    /// Answered on any control connection (one that has not completed an
    /// agent handshake) — the daemon replies with [`Envelope::Metrics`]
    /// on the same stream and keeps the connection open for more
    /// requests.
    MetricsRequest,
    /// The daemon's reply to [`Envelope::MetricsRequest`]: a
    /// deterministic-JSON dump of every registered counter, gauge, and
    /// histogram.
    Metrics {
        /// The process-wide metrics snapshot at reply time.
        metrics: ObsSnapshot,
    },
    /// Typed refusal of a sited [`Envelope::Hello`]: this daemon does
    /// not host (or no longer hosts) the named site. Unlike
    /// [`Envelope::Busy`] this is *fatal* for the agent — a drained or
    /// removed site never comes back under this address, so retrying
    /// cannot help.
    SiteGone {
        /// The site the hello named (empty when the hello named none).
        site: String,
    },
    /// A fleet lifecycle operation, accepted on control connections
    /// (ones that have not completed an agent handshake). Mutations are
    /// answered with [`Envelope::FleetAck`], status queries with
    /// [`Envelope::FleetStatus`].
    Fleet(FleetOp),
    /// Reply to [`FleetOp::Status`]: one entry per registered site, in
    /// site-id order.
    FleetStatus {
        /// Per-site state, sorted by site id.
        sites: Vec<SiteStatus>,
    },
    /// Reply to a fleet mutation ([`FleetOp::Drain`],
    /// [`FleetOp::Remove`], [`FleetOp::Add`]).
    FleetAck {
        /// The operation this acknowledges (`"drain"`, `"remove"`,
        /// `"add"`).
        op: String,
        /// The site the operation named.
        site: String,
        /// Whether the operation was applied.
        ok: bool,
        /// Free-form detail (the refusal reason when `ok` is false).
        detail: String,
    },
}

/// One fleet lifecycle operation (see [`Envelope::Fleet`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FleetOp {
    /// Report every registered site's state.
    Status,
    /// Stop accepting new agents for `site`, finish its in-flight
    /// epochs, persist, and detach it.
    Drain {
        /// The site to drain.
        site: String,
    },
    /// Drain `site` and forget it entirely (its status entry goes away
    /// once it finishes).
    Remove {
        /// The site to remove.
        site: String,
    },
    /// Register and start a new site while the fleet is running.
    Add {
        /// The new site's definition.
        spec: SiteSpec,
    },
}

impl FleetOp {
    /// The operation's wire name (`"status"`, `"drain"`, `"remove"`,
    /// `"add"`) — what [`Envelope::FleetAck`] echoes in its `op` field.
    pub fn name(&self) -> &'static str {
        match self {
            FleetOp::Status => "status",
            FleetOp::Drain { .. } => "drain",
            FleetOp::Remove { .. } => "remove",
            FleetOp::Add { .. } => "add",
        }
    }

    /// The site the operation targets (the spec's id for
    /// [`FleetOp::Add`]; empty for [`FleetOp::Status`]).
    pub fn site(&self) -> &str {
        match self {
            FleetOp::Status => "",
            FleetOp::Drain { site } | FleetOp::Remove { site } => site,
            FleetOp::Add { spec } => &spec.id,
        }
    }
}

impl FromJson for FleetOp {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let op = value
            .field("op")?
            .as_str()
            .ok_or_else(|| JsonError::shape("fleet op must be a string"))?;
        match op {
            "status" => Ok(FleetOp::Status),
            "drain" => Ok(FleetOp::Drain {
                site: String::from_json(value.field("site")?)?,
            }),
            "remove" => Ok(FleetOp::Remove {
                site: String::from_json(value.field("site")?)?,
            }),
            "add" => Ok(FleetOp::Add {
                spec: SiteSpec::from_json(value.field("spec")?)?,
            }),
            other => Err(JsonError::shape(format!("unknown fleet op {other:?}"))),
        }
    }
}

impl ToJson for FleetOp {
    fn to_json(&self) -> Json {
        match self {
            FleetOp::Status => Json::obj([("op", Json::Str("status".into()))]),
            FleetOp::Drain { site } => Json::obj([
                ("op", Json::Str("drain".into())),
                ("site", Json::Str(site.clone())),
            ]),
            FleetOp::Remove { site } => Json::obj([
                ("op", Json::Str("remove".into())),
                ("site", Json::Str(site.clone())),
            ]),
            FleetOp::Add { spec } => {
                Json::obj([("op", Json::Str("add".into())), ("spec", spec.to_json())])
            }
        }
    }
}

/// A site's definition as shipped over the wire (and in `--sites`
/// spec files): everything needed to regenerate its scenario and
/// controller deterministically. The scenario itself never crosses the
/// wire — both sides rebuild it from `(preset, users, seed)`, exactly
/// like the single-site `wolt serve`/`wolt agent` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// Unique site id; must be filesystem-safe (it names the site's
    /// snapshot subdirectory): `[A-Za-z0-9._-]+`, at most 64 bytes, and
    /// not `.` or `..`.
    pub id: String,
    /// Scenario preset: `"lab"` or `"enterprise"`.
    pub preset: String,
    /// Users in the site's scenario.
    pub users: usize,
    /// Scenario *and* capacity-noise seed.
    pub seed: u64,
    /// Association policy: `"wolt"`, `"greedy"`, or `"rssi"`.
    pub policy: String,
    /// Stop this site after this many completed events (the restart
    /// tests' deterministic kill switch); `None` runs to completion.
    pub stop_after: Option<usize>,
}

impl ToJson for SiteSpec {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::Str(self.id.clone())),
            ("preset", Json::Str(self.preset.clone())),
            ("users", self.users.to_json()),
            ("seed", self.seed.to_json()),
            ("policy", Json::Str(self.policy.clone())),
            ("stop_after", self.stop_after.to_json()),
        ])
    }
}

impl FromJson for SiteSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(SiteSpec {
            id: String::from_json(value.field("id")?)?,
            preset: String::from_json(value.field("preset")?)?,
            users: usize::from_json(value.field("users")?)?,
            seed: u64::from_json(value.field("seed")?)?,
            policy: String::from_json(value.field("policy")?)?,
            // Optional in spec files: omitting it means run to the end.
            stop_after: match value.get("stop_after") {
                None => None,
                Some(v) => Option::<usize>::from_json(v)?,
            },
        })
    }
}

/// One site's state in a [`Envelope::FleetStatus`] reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStatus {
    /// The site id.
    pub site: String,
    /// Lifecycle state: `"waiting"`, `"running"`, `"draining"`,
    /// `"done"`, or `"failed"`.
    pub state: String,
    /// Users in the site's scenario.
    pub users: u64,
    /// Events completed so far (including restored ones).
    pub epochs_done: u64,
    /// Events configured in total.
    pub events: u64,
}

impl ToJson for SiteStatus {
    fn to_json(&self) -> Json {
        Json::obj([
            ("site", Json::Str(self.site.clone())),
            ("state", Json::Str(self.state.clone())),
            ("users", self.users.to_json()),
            ("epochs_done", self.epochs_done.to_json()),
            ("events", self.events.to_json()),
        ])
    }
}

impl FromJson for SiteStatus {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(SiteStatus {
            site: String::from_json(value.field("site")?)?,
            state: String::from_json(value.field("state")?)?,
            users: u64::from_json(value.field("users")?)?,
            epochs_done: u64::from_json(value.field("epochs_done")?)?,
            events: u64::from_json(value.field("events")?)?,
        })
    }
}

impl ToJson for Envelope {
    fn to_json(&self) -> Json {
        match self {
            Envelope::Hello { client, name, site } => {
                let mut fields = vec![
                    ("t", Json::Str("hello".into())),
                    ("client", client.to_json()),
                    ("name", Json::Str(name.clone())),
                ];
                // Omitted when `None`: a site-less hello stays
                // byte-identical to the pre-fleet handshake.
                if let Some(site) = site {
                    fields.push(("site", Json::Str(site.clone())));
                }
                Json::obj(fields)
            }
            Envelope::HelloAck { attached } => Json::obj([
                ("t", Json::Str("hello_ack".into())),
                ("attached", attached.to_json()),
            ]),
            Envelope::Busy { limit } => {
                Json::obj([("t", Json::Str("busy".into())), ("limit", limit.to_json())])
            }
            Envelope::Ctrl(m) => Json::obj([("t", Json::Str("ctrl".into())), ("m", m.to_json())]),
            Envelope::Client(m) => {
                Json::obj([("t", Json::Str("client".into())), ("m", m.to_json())])
            }
            Envelope::Agent(m) => Json::obj([("t", Json::Str("agent".into())), ("m", m.to_json())]),
            Envelope::Shutdown { reason } => Json::obj([
                ("t", Json::Str("stop".into())),
                ("reason", Json::Str(reason.clone())),
            ]),
            Envelope::MetricsRequest => Json::obj([("t", Json::Str("metrics".into()))]),
            Envelope::Metrics { metrics } => Json::obj([
                ("t", Json::Str("metrics_reply".into())),
                ("m", metrics.to_json()),
            ]),
            Envelope::SiteGone { site } => Json::obj([
                ("t", Json::Str("site_gone".into())),
                ("site", Json::Str(site.clone())),
            ]),
            Envelope::Fleet(op) => {
                Json::obj([("t", Json::Str("fleet".into())), ("m", op.to_json())])
            }
            Envelope::FleetStatus { sites } => Json::obj([
                ("t", Json::Str("fleet_status".into())),
                ("sites", sites.to_json()),
            ]),
            Envelope::FleetAck {
                op,
                site,
                ok,
                detail,
            } => Json::obj([
                ("t", Json::Str("fleet_ack".into())),
                ("op", Json::Str(op.clone())),
                ("site", Json::Str(site.clone())),
                ("ok", ok.to_json()),
                ("detail", Json::Str(detail.clone())),
            ]),
        }
    }
}

impl FromJson for Envelope {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let tag = value
            .field("t")?
            .as_str()
            .ok_or_else(|| JsonError::shape("envelope tag must be a string"))?;
        match tag {
            "hello" => Ok(Envelope::Hello {
                client: usize::from_json(value.field("client")?)?,
                name: String::from_json(value.field("name")?)?,
                // Absent on pre-fleet agents: decode as site-less.
                site: match value.get("site") {
                    None => None,
                    Some(v) => Some(String::from_json(v)?),
                },
            }),
            "hello_ack" => Ok(Envelope::HelloAck {
                attached: Option::<usize>::from_json(value.field("attached")?)?,
            }),
            "busy" => Ok(Envelope::Busy {
                limit: u64::from_json(value.field("limit")?)?,
            }),
            "ctrl" => Ok(Envelope::Ctrl(ToController::from_json(value.field("m")?)?)),
            "client" => Ok(Envelope::Client(ToClient::from_json(value.field("m")?)?)),
            "agent" => Ok(Envelope::Agent(ToAgent::from_json(value.field("m")?)?)),
            "stop" => Ok(Envelope::Shutdown {
                reason: String::from_json(value.field("reason")?)?,
            }),
            "metrics" => Ok(Envelope::MetricsRequest),
            "metrics_reply" => Ok(Envelope::Metrics {
                metrics: ObsSnapshot::from_json(value.field("m")?)?,
            }),
            "site_gone" => Ok(Envelope::SiteGone {
                site: String::from_json(value.field("site")?)?,
            }),
            "fleet" => Ok(Envelope::Fleet(FleetOp::from_json(value.field("m")?)?)),
            "fleet_status" => Ok(Envelope::FleetStatus {
                sites: Vec::<SiteStatus>::from_json(value.field("sites")?)?,
            }),
            "fleet_ack" => Ok(Envelope::FleetAck {
                op: String::from_json(value.field("op")?)?,
                site: String::from_json(value.field("site")?)?,
                ok: bool::from_json(value.field("ok")?)?,
                detail: String::from_json(value.field("detail")?)?,
            }),
            other => Err(JsonError::shape(format!("unknown envelope tag {other:?}"))),
        }
    }
}

/// Writes one envelope as a length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn send(w: &mut impl Write, envelope: &Envelope) -> io::Result<()> {
    send_counted(w, envelope).map(|_| ())
}

/// [`send`], additionally returning the bytes put on the wire so the
/// daemon can meter its outbound traffic.
///
/// # Errors
///
/// As [`send`].
pub fn send_counted(w: &mut impl Write, envelope: &Envelope) -> io::Result<usize> {
    write_frame_counted(w, &envelope.to_json())
}

/// Reads one envelope. `Ok(None)` is a cleanly closed connection.
///
/// # Errors
///
/// As [`wolt_testbed::codec::read_frame`], plus
/// [`io::ErrorKind::InvalidData`] when the frame decodes to JSON that is
/// not a valid envelope.
pub fn recv(r: &mut impl Read) -> io::Result<Option<Envelope>> {
    recv_counted(r).map(|msg| msg.map(|(envelope, _)| envelope))
}

/// [`recv`], additionally returning the bytes consumed from the wire so
/// the daemon can meter its inbound traffic.
///
/// # Errors
///
/// As [`recv`].
pub fn recv_counted(r: &mut impl Read) -> io::Result<Option<(Envelope, usize)>> {
    match read_frame_counted(r)? {
        None => Ok(None),
        Some((json, bytes)) => Envelope::from_json(&json)
            .map(|envelope| Some((envelope, bytes)))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad envelope: {e}"))),
    }
}

/// [`recv_counted`] over a stream whose read timeout is used as a
/// polling tick: idle frame boundaries wait under the caller's control,
/// mid-frame stalls are bounded (see
/// [`wolt_testbed::codec::ReadPatience`]).
///
/// # Errors
///
/// As [`recv_counted`], plus [`io::ErrorKind::TimedOut`] when the peer
/// stalls mid-frame past the budget.
pub fn recv_counted_patient(
    r: &mut impl Read,
    patience: &mut ReadPatience<'_>,
) -> io::Result<Option<(Envelope, usize)>> {
    match read_frame_counted_patient(r, patience)? {
        None => Ok(None),
        Some((json, bytes)) => Envelope::from_json(&json)
            .map(|envelope| Some((envelope, bytes)))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad envelope: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_support::obs::HistogramSnapshot;
    use wolt_testbed::codec::write_frame;
    use wolt_units::Mbps;

    fn round_trip(env: Envelope) {
        let mut buf = Vec::new();
        send(&mut buf, &env).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(recv(&mut r).unwrap().expect("one envelope"), env);
        assert!(recv(&mut r).unwrap().is_none());
    }

    #[test]
    fn every_envelope_variant_round_trips() {
        round_trip(Envelope::Hello {
            client: 4,
            name: "laptop-4".into(),
            site: None,
        });
        round_trip(Envelope::Hello {
            client: 4,
            name: "laptop-4".into(),
            site: Some("floor-3".into()),
        });
        round_trip(Envelope::HelloAck { attached: Some(2) });
        round_trip(Envelope::HelloAck { attached: None });
        round_trip(Envelope::Busy { limit: 16 });
        round_trip(Envelope::Ctrl(ToController::Report {
            client: 0,
            epoch: 1,
            rates: vec![Some(Mbps::new(33.25)), None],
            attached: 1,
        }));
        round_trip(Envelope::Client(ToClient::Directive {
            extender: 1,
            seq: 5,
            attempt: 2,
        }));
        round_trip(Envelope::Agent(ToAgent::Join {
            epoch: 0,
            attempt: 1,
        }));
        round_trip(Envelope::Shutdown {
            reason: "operator".into(),
        });
        round_trip(Envelope::MetricsRequest);
        let mut metrics = ObsSnapshot::default();
        metrics.counters.insert("daemon.frames_in".into(), 12);
        metrics.gauges.insert("daemon.connections".into(), 3);
        metrics.histograms.insert(
            "daemon.resolve_us".into(),
            HistogramSnapshot {
                bounds: vec![100, 1_000],
                counts: vec![2, 1, 0],
                count: 3,
                sum: 900,
                max: 600,
            },
        );
        round_trip(Envelope::Metrics { metrics });
        round_trip(Envelope::Metrics {
            metrics: ObsSnapshot::default(),
        });
        round_trip(Envelope::SiteGone {
            site: "floor-3".into(),
        });
        round_trip(Envelope::Fleet(FleetOp::Status));
        round_trip(Envelope::Fleet(FleetOp::Drain {
            site: "floor-3".into(),
        }));
        round_trip(Envelope::Fleet(FleetOp::Remove {
            site: "floor-3".into(),
        }));
        round_trip(Envelope::Fleet(FleetOp::Add {
            spec: SiteSpec {
                id: "annex".into(),
                preset: "lab".into(),
                users: 4,
                seed: 7,
                policy: "wolt".into(),
                stop_after: Some(2),
            },
        }));
        round_trip(Envelope::FleetStatus {
            sites: vec![
                SiteStatus {
                    site: "annex".into(),
                    state: "running".into(),
                    users: 4,
                    epochs_done: 2,
                    events: 4,
                },
                SiteStatus {
                    site: "floor-3".into(),
                    state: "done".into(),
                    users: 3,
                    epochs_done: 3,
                    events: 3,
                },
            ],
        });
        round_trip(Envelope::FleetStatus { sites: Vec::new() });
        round_trip(Envelope::FleetAck {
            op: "drain".into(),
            site: "floor-3".into(),
            ok: false,
            detail: "unknown site".into(),
        });
    }

    #[test]
    fn site_less_hello_is_byte_identical_to_the_pre_fleet_frame() {
        // A fleet-aware agent talking to a single-site daemon must put
        // exactly the old bytes on the wire: the `site` field is
        // omitted, not null.
        let mut buf = Vec::new();
        send(
            &mut buf,
            &Envelope::Hello {
                client: 2,
                name: "laptop-2".into(),
                site: None,
            },
        )
        .unwrap();
        let mut old = Vec::new();
        write_frame(
            &mut old,
            &Json::obj([
                ("t", Json::Str("hello".into())),
                ("client", Json::Int(2)),
                ("name", Json::Str("laptop-2".into())),
            ]),
        )
        .unwrap();
        assert_eq!(buf, old);
    }

    #[test]
    fn spec_files_may_omit_stop_after() {
        let spec = SiteSpec::from_json(&Json::obj([
            ("id", Json::Str("a".into())),
            ("preset", Json::Str("lab".into())),
            ("users", Json::Int(3)),
            ("seed", Json::Int(1)),
            ("policy", Json::Str("wolt".into())),
        ]))
        .unwrap();
        assert_eq!(spec.stop_after, None);
    }

    #[test]
    fn nasty_strings_survive_the_wire() {
        for name in [
            "tabs\tand\nnewlines\r",
            "nul\u{0}and bell\u{7}",
            "quotes \" backslash \\ slash /",
            "非ASCII → λ ∀ 🦀",
            "escape-looking \\u0041 literal",
        ] {
            round_trip(Envelope::Hello {
                client: 0,
                name: name.into(),
                site: Some(name.into()),
            });
            round_trip(Envelope::Shutdown {
                reason: name.into(),
            });
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj([("t", Json::Str("warp".into()))])).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(recv(&mut r).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }
}
