//! The daemon's wire envelope: the protocol enums of
//! [`wolt_testbed::protocol`] plus the connection-level messages TCP
//! needs (handshake, restore handoff, operator shutdown).
//!
//! The in-process rig needs no handshake — channel identity *is* client
//! identity. Over TCP the daemon learns who connected from the first
//! frame ([`Envelope::Hello`]) and answers with the client's last known
//! attachment ([`Envelope::HelloAck`]), which is how a restarted daemon
//! hands a reconnecting agent its pre-crash state (the data plane — the
//! radio association — survives a controller reboot).
//!
//! Every envelope serializes to a `{"t": ...}` tagged object through the
//! deterministic `wolt_support::json` encoder and travels as one
//! length-prefixed frame (see [`wolt_testbed::codec`]).

use std::io::{self, Read, Write};

use wolt_support::json::{FromJson, Json, JsonError, ToJson};
use wolt_support::obs::ObsSnapshot;
use wolt_testbed::codec::{
    read_frame_counted, read_frame_counted_patient, write_frame_counted, ReadPatience,
};
use wolt_testbed::protocol::{ToAgent, ToClient, ToController};

/// One daemon wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// First frame on every agent connection: who is calling. `name` is a
    /// free-form label for logs (it may contain any Unicode, including
    /// control characters — the codec must round-trip it untouched).
    Hello {
        /// Client index in the scenario.
        client: usize,
        /// Free-form agent label.
        name: String,
    },
    /// The daemon's handshake reply: the client's attachment according to
    /// the (possibly restored) controller state, which the agent adopts.
    HelloAck {
        /// Saved extender attachment, if the controller knows one.
        attached: Option<usize>,
    },
    /// The daemon's overload refusal, sent in place of any other reply
    /// when a new connection arrives past the configured connection cap.
    /// The peer should back off and retry; the daemon closes the
    /// connection after sending it.
    Busy {
        /// The daemon's configured connection limit.
        limit: u64,
    },
    /// An agent → controller protocol message.
    Ctrl(ToController),
    /// A controller → client directive or shutdown.
    Client(ToClient),
    /// A session-driver command (join/leave/shutdown).
    Agent(ToAgent),
    /// Operator request: snapshot and stop the daemon gracefully.
    Shutdown {
        /// Free-form reason, echoed into the daemon's logs.
        reason: String,
    },
    /// Operator request: reply with the daemon's metrics snapshot.
    /// Answered on any control connection (one that has not completed an
    /// agent handshake) — the daemon replies with [`Envelope::Metrics`]
    /// on the same stream and keeps the connection open for more
    /// requests.
    MetricsRequest,
    /// The daemon's reply to [`Envelope::MetricsRequest`]: a
    /// deterministic-JSON dump of every registered counter, gauge, and
    /// histogram.
    Metrics {
        /// The process-wide metrics snapshot at reply time.
        metrics: ObsSnapshot,
    },
}

impl ToJson for Envelope {
    fn to_json(&self) -> Json {
        match self {
            Envelope::Hello { client, name } => Json::obj([
                ("t", Json::Str("hello".into())),
                ("client", client.to_json()),
                ("name", Json::Str(name.clone())),
            ]),
            Envelope::HelloAck { attached } => Json::obj([
                ("t", Json::Str("hello_ack".into())),
                ("attached", attached.to_json()),
            ]),
            Envelope::Busy { limit } => {
                Json::obj([("t", Json::Str("busy".into())), ("limit", limit.to_json())])
            }
            Envelope::Ctrl(m) => Json::obj([("t", Json::Str("ctrl".into())), ("m", m.to_json())]),
            Envelope::Client(m) => {
                Json::obj([("t", Json::Str("client".into())), ("m", m.to_json())])
            }
            Envelope::Agent(m) => Json::obj([("t", Json::Str("agent".into())), ("m", m.to_json())]),
            Envelope::Shutdown { reason } => Json::obj([
                ("t", Json::Str("stop".into())),
                ("reason", Json::Str(reason.clone())),
            ]),
            Envelope::MetricsRequest => Json::obj([("t", Json::Str("metrics".into()))]),
            Envelope::Metrics { metrics } => Json::obj([
                ("t", Json::Str("metrics_reply".into())),
                ("m", metrics.to_json()),
            ]),
        }
    }
}

impl FromJson for Envelope {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let tag = value
            .field("t")?
            .as_str()
            .ok_or_else(|| JsonError::shape("envelope tag must be a string"))?;
        match tag {
            "hello" => Ok(Envelope::Hello {
                client: usize::from_json(value.field("client")?)?,
                name: String::from_json(value.field("name")?)?,
            }),
            "hello_ack" => Ok(Envelope::HelloAck {
                attached: Option::<usize>::from_json(value.field("attached")?)?,
            }),
            "busy" => Ok(Envelope::Busy {
                limit: u64::from_json(value.field("limit")?)?,
            }),
            "ctrl" => Ok(Envelope::Ctrl(ToController::from_json(value.field("m")?)?)),
            "client" => Ok(Envelope::Client(ToClient::from_json(value.field("m")?)?)),
            "agent" => Ok(Envelope::Agent(ToAgent::from_json(value.field("m")?)?)),
            "stop" => Ok(Envelope::Shutdown {
                reason: String::from_json(value.field("reason")?)?,
            }),
            "metrics" => Ok(Envelope::MetricsRequest),
            "metrics_reply" => Ok(Envelope::Metrics {
                metrics: ObsSnapshot::from_json(value.field("m")?)?,
            }),
            other => Err(JsonError::shape(format!("unknown envelope tag {other:?}"))),
        }
    }
}

/// Writes one envelope as a length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures from the underlying writer.
pub fn send(w: &mut impl Write, envelope: &Envelope) -> io::Result<()> {
    send_counted(w, envelope).map(|_| ())
}

/// [`send`], additionally returning the bytes put on the wire so the
/// daemon can meter its outbound traffic.
///
/// # Errors
///
/// As [`send`].
pub fn send_counted(w: &mut impl Write, envelope: &Envelope) -> io::Result<usize> {
    write_frame_counted(w, &envelope.to_json())
}

/// Reads one envelope. `Ok(None)` is a cleanly closed connection.
///
/// # Errors
///
/// As [`wolt_testbed::codec::read_frame`], plus
/// [`io::ErrorKind::InvalidData`] when the frame decodes to JSON that is
/// not a valid envelope.
pub fn recv(r: &mut impl Read) -> io::Result<Option<Envelope>> {
    recv_counted(r).map(|msg| msg.map(|(envelope, _)| envelope))
}

/// [`recv`], additionally returning the bytes consumed from the wire so
/// the daemon can meter its inbound traffic.
///
/// # Errors
///
/// As [`recv`].
pub fn recv_counted(r: &mut impl Read) -> io::Result<Option<(Envelope, usize)>> {
    match read_frame_counted(r)? {
        None => Ok(None),
        Some((json, bytes)) => Envelope::from_json(&json)
            .map(|envelope| Some((envelope, bytes)))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad envelope: {e}"))),
    }
}

/// [`recv_counted`] over a stream whose read timeout is used as a
/// polling tick: idle frame boundaries wait under the caller's control,
/// mid-frame stalls are bounded (see
/// [`wolt_testbed::codec::ReadPatience`]).
///
/// # Errors
///
/// As [`recv_counted`], plus [`io::ErrorKind::TimedOut`] when the peer
/// stalls mid-frame past the budget.
pub fn recv_counted_patient(
    r: &mut impl Read,
    patience: &mut ReadPatience<'_>,
) -> io::Result<Option<(Envelope, usize)>> {
    match read_frame_counted_patient(r, patience)? {
        None => Ok(None),
        Some((json, bytes)) => Envelope::from_json(&json)
            .map(|envelope| Some((envelope, bytes)))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad envelope: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wolt_support::obs::HistogramSnapshot;
    use wolt_testbed::codec::write_frame;
    use wolt_units::Mbps;

    fn round_trip(env: Envelope) {
        let mut buf = Vec::new();
        send(&mut buf, &env).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(recv(&mut r).unwrap().expect("one envelope"), env);
        assert!(recv(&mut r).unwrap().is_none());
    }

    #[test]
    fn every_envelope_variant_round_trips() {
        round_trip(Envelope::Hello {
            client: 4,
            name: "laptop-4".into(),
        });
        round_trip(Envelope::HelloAck { attached: Some(2) });
        round_trip(Envelope::HelloAck { attached: None });
        round_trip(Envelope::Busy { limit: 16 });
        round_trip(Envelope::Ctrl(ToController::Report {
            client: 0,
            epoch: 1,
            rates: vec![Some(Mbps::new(33.25)), None],
            attached: 1,
        }));
        round_trip(Envelope::Client(ToClient::Directive {
            extender: 1,
            seq: 5,
            attempt: 2,
        }));
        round_trip(Envelope::Agent(ToAgent::Join {
            epoch: 0,
            attempt: 1,
        }));
        round_trip(Envelope::Shutdown {
            reason: "operator".into(),
        });
        round_trip(Envelope::MetricsRequest);
        let mut metrics = ObsSnapshot::default();
        metrics.counters.insert("daemon.frames_in".into(), 12);
        metrics.gauges.insert("daemon.connections".into(), 3);
        metrics.histograms.insert(
            "daemon.resolve_us".into(),
            HistogramSnapshot {
                bounds: vec![100, 1_000],
                counts: vec![2, 1, 0],
                count: 3,
                sum: 900,
                max: 600,
            },
        );
        round_trip(Envelope::Metrics { metrics });
        round_trip(Envelope::Metrics {
            metrics: ObsSnapshot::default(),
        });
    }

    #[test]
    fn nasty_strings_survive_the_wire() {
        for name in [
            "tabs\tand\nnewlines\r",
            "nul\u{0}and bell\u{7}",
            "quotes \" backslash \\ slash /",
            "非ASCII → λ ∀ 🦀",
            "escape-looking \\u0041 literal",
        ] {
            round_trip(Envelope::Hello {
                client: 0,
                name: name.into(),
            });
            round_trip(Envelope::Shutdown {
                reason: name.into(),
            });
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj([("t", Json::Str("warp".into()))])).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(recv(&mut r).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }
}
