//! The `wolt-daemon` server: the Central Controller as a long-running
//! TCP service.
//!
//! The in-process rig ([`wolt_testbed::rig`]) wires the controller and
//! the client agents together with mpsc channels inside one process. The
//! daemon replaces the channel transport with TCP — agents connect over
//! loopback (or a LAN), handshake with [`Envelope::Hello`], and then
//! speak exactly the [`wolt_testbed::protocol`] messages the rig speaks —
//! while every *decision* (planning, sequencing, epoch dedup,
//! declared-dead bookkeeping) stays in the shared
//! [`ControllerCore`]. Because both transports drive the same core with
//! the same inputs in the same order, a clean TCP session produces a
//! [`SessionReport`] whose canonical rendering is byte-identical to the
//! in-process run for the same scenario, seed, and policy.
//!
//! # Concurrency
//!
//! One reader task per connection (on a [`TaskPool`]) parses frames and
//! forwards them into a single bounded [`inbox`](crate::inbox) queue;
//! the session loop is the only thread that touches the
//! [`ControllerCore`] or writes to agent sockets. The accept loop runs
//! on its own thread with a nonblocking listener so shutdown is prompt.
//!
//! # Persistence
//!
//! After every completed epoch the daemon snapshots its full state (see
//! [`DaemonSnapshot`]) through the generational
//! [`SnapshotStore`](crate::store::SnapshotStore): each save is a fresh
//! checksummed `snapshot.<gen>.json` in `snapshot_dir`, and restore
//! rolls back over torn or corrupt generations to the newest one that
//! verifies. A restarted daemon restores that snapshot, hands each
//! reconnecting agent its saved attachment in the handshake (the radio
//! association outlives the controller process), and resumes at the
//! saved epoch — issuing no extra directives for work already done.
//!
//! # Overload
//!
//! Three independent guards keep a misbehaving or excessive peer from
//! taking the daemon down, each with an exact counter: connections past
//! `max_connections` are refused with a typed [`Envelope::Busy`] reply
//! (`daemon.conns_rejected`); a peer that stalls mid-frame past
//! `read_stall` loses its connection (`daemon.read_timeouts`) while
//! idling *between* frames stays free; and the session inbox is bounded
//! at `inbox_cap` entries, shedding the oldest queued telemetry first —
//! never acks or lifecycle messages (`daemon.frames_shed`).

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use wolt_plc::capacity::CapacityEstimator;
use wolt_sim::Scenario;
use wolt_support::pool::TaskPool;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};
use wolt_support::{crash_point, obs};
use wolt_testbed::codec::ReadPatience;
use wolt_testbed::protocol::{ToAgent, ToClient, ToController};
use wolt_testbed::{
    assemble_report, ControllerConfig, ControllerCore, ControllerPolicy, Deadlines, Directive,
    SessionEvent, SessionLedger, SessionReport, TestbedError,
};
use wolt_units::Mbps;

use crate::inbox::{self, Inbox, InboxSender};
use crate::snapshot::DaemonSnapshot;
use crate::store::{self, SnapshotStore};
use crate::wire::{self, Envelope};
use crate::DaemonError;

/// Crash point after an epoch's event completed but before its snapshot
/// is written: the restarted daemon replays the whole event.
pub const CRASH_PRE_SNAPSHOT: &str = "daemon.epoch.pre_snapshot";

/// Crash point right after an epoch's snapshot is durable: the restarted
/// daemon resumes at the next event with zero replay.
pub const CRASH_POST_SNAPSHOT: &str = "daemon.epoch.post_snapshot";

/// The polling tick used when `read_stall` arms patient reads: the
/// socket read timeout under the stall budget.
const READ_TICK: Duration = Duration::from_millis(25);

/// Wire-traffic counters, cached: the reader tasks account every frame
/// and byte that crosses the daemon's sockets, in both directions.
fn note_frame_in(bytes: usize) {
    static FRAMES: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    static BYTES: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    FRAMES
        .get_or_init(|| obs::counter("daemon.frames_in"))
        .inc();
    BYTES
        .get_or_init(|| obs::counter("daemon.bytes_in"))
        .add(bytes as u64);
}

fn note_frame_out(bytes: usize) {
    static FRAMES: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    static BYTES: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    FRAMES
        .get_or_init(|| obs::counter("daemon.frames_out"))
        .inc();
    BYTES
        .get_or_init(|| obs::counter("daemon.bytes_out"))
        .add(bytes as u64);
}

/// Daemon configuration beyond the scenario and event list.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Association logic at the CC.
    pub policy: ControllerPolicy,
    /// Offline PLC capacity estimation procedure (measurement noise).
    pub estimator: CapacityEstimator,
    /// Deadline and retry budgets, shared with the in-process rig.
    pub deadlines: Deadlines,
    /// Seed for the capacity-estimation noise (the rig's `seed`).
    pub noise_seed: u64,
    /// Directory for the generational snapshot store
    /// ([`crate::store::SnapshotStore`]); `None` disables persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Snapshot generations kept on disk (must be ≥ 1 when persistence
    /// is on); older generations are pruned after each save.
    pub snapshot_keep: usize,
    /// Stop (snapshot + graceful shutdown) after this many events have
    /// completed in total — an operational kill switch and the hook the
    /// restart tests use to stop deterministically mid-session.
    pub stop_after: Option<usize>,
    /// How long to wait for every agent to connect before giving up.
    pub connect_deadline: Duration,
    /// Reader-pool workers; `0` sizes the pool to `n_users + 2` (one per
    /// expected agent plus slack for an operator connection).
    pub workers: usize,
    /// Evict telemetry entries staler than this many epochs after each
    /// event. Off by default: agents report once at join, so a client's
    /// staleness grows with every later epoch and an aggressive bound
    /// would evict *live* clients (and change planning inputs). Enable
    /// only for open-ended deployments where departed clients may vanish
    /// without a notice.
    pub max_staleness: Option<u64>,
    /// How long to keep the listener (and metrics service) alive after
    /// the last event completes, before dismissing agents and shutting
    /// down. Zero by default. Gives external scrapers a deterministic
    /// window to read the finished session's counters over the
    /// [`Envelope::MetricsRequest`] envelope.
    pub linger: Duration,
    /// Concurrent connections accepted before new arrivals are refused
    /// with [`Envelope::Busy`]; `0` means unlimited.
    pub max_connections: usize,
    /// Session-inbox bound; past it the oldest queued telemetry frame is
    /// shed (acks and lifecycle messages never are). `0` means
    /// unbounded.
    pub inbox_cap: usize,
    /// How long a peer may stall *mid-frame* before its connection is
    /// dropped (idle between frames is always allowed). `Duration::ZERO`
    /// disables the deadline (fully blocking reads, as before).
    pub read_stall: Duration,
}

impl DaemonConfig {
    /// Config with the given policy and defaults for everything else.
    pub fn new(policy: ControllerPolicy) -> Self {
        Self {
            policy,
            estimator: CapacityEstimator::default(),
            deadlines: Deadlines::default(),
            noise_seed: 0,
            snapshot_dir: None,
            snapshot_keep: store::DEFAULT_KEEP,
            stop_after: None,
            connect_deadline: Duration::from_secs(30),
            workers: 0,
            max_staleness: None,
            linger: Duration::ZERO,
            max_connections: 0,
            inbox_cap: 0,
            read_stall: Duration::from_secs(5),
        }
    }
}

/// Transport-level counters from one daemon run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonStats {
    /// Protocol messages received from agents (reports, acks,
    /// departures).
    pub msgs_in: usize,
    /// Per-event re-solve latency: from receiving the triggering report
    /// to the directive transaction completing (all acks in).
    pub resolve_latencies: Vec<Duration>,
    /// Wall-clock time spent driving the session (agents connected →
    /// last event done).
    pub elapsed: Duration,
}

/// What one daemon run produced.
#[derive(Debug, Clone)]
pub struct DaemonOutcome {
    /// The evaluated session outcome (partial if the run was stopped).
    pub report: SessionReport,
    /// Whether every configured event completed.
    pub completed: bool,
    /// Events completed in total (including ones restored from a
    /// snapshot).
    pub epochs_done: usize,
    /// Transport counters.
    pub stats: DaemonStats,
}

/// Whether the inbox shed policy may drop a queued message under
/// pressure: only telemetry (scan reports), which the harness's
/// retransmission schedule recovers. Acks and lifecycle messages are
/// load-bearing — dropping one would wedge a transaction or the session.
fn incoming_sheddable(msg: &Incoming) -> bool {
    matches!(msg, Incoming::Msg(ToController::Report { .. }))
}

/// Everything a reader task can feed the session loop.
enum Incoming {
    /// A connection completed its handshake for `client`.
    Register { client: usize, writer: TcpStream },
    /// A protocol message from a registered agent.
    Msg(ToController),
    /// An operator asked the daemon to stop.
    Stop { reason: String },
    /// A registered agent's connection ended.
    Gone { client: usize },
}

/// How one driven event ended.
enum EventEnd {
    Completed,
    Unresponsive,
    Stopped,
}

/// The Central Controller as a TCP server.
pub struct Daemon {
    listener: TcpListener,
    scenario: Scenario,
    events: Vec<SessionEvent>,
    config: DaemonConfig,
}

impl Daemon {
    /// Binds the daemon's listening socket.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when the address cannot be bound;
    /// [`DaemonError::InvalidConfig`] for an empty scenario or zero
    /// retry budgets.
    pub fn bind(
        addr: impl ToSocketAddrs,
        scenario: Scenario,
        events: Vec<SessionEvent>,
        config: DaemonConfig,
    ) -> Result<Self, DaemonError> {
        if scenario.user_positions.is_empty() || scenario.extender_positions.is_empty() {
            return Err(DaemonError::InvalidConfig {
                context: "scenario needs at least one user and one extender".into(),
            });
        }
        if config.deadlines.event_attempts == 0 || config.deadlines.ack_attempts == 0 {
            return Err(DaemonError::InvalidConfig {
                context: "deadlines need at least one attempt per message".into(),
            });
        }
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            scenario,
            events,
            config,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS failure to report the socket address.
    pub fn local_addr(&self) -> Result<SocketAddr, DaemonError> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs the session to completion (or a stop request) and returns
    /// the evaluated outcome.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Timeout`] when the expected agents never connect;
    /// [`DaemonError::Testbed`] for session-machinery failures;
    /// [`DaemonError::Io`] for socket failures.
    pub fn run(self) -> Result<DaemonOutcome, DaemonError> {
        let n_users = self.scenario.user_positions.len();

        // Offline capacity estimation — identical to the rig's.
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.noise_seed);
        let estimated: Vec<Mbps> = self
            .scenario
            .capacities
            .iter()
            .map(|&c| self.config.estimator.estimate(c, &mut rng))
            .collect::<Result<_, _>>()
            .map_err(|e| {
                DaemonError::from(TestbedError::Layer {
                    context: format!("capacity estimation: {e}"),
                })
            })?;
        let core_config = ControllerConfig {
            policy: self.config.policy,
            estimated_capacities: estimated,
            strict: false,
        };

        // Cold start or snapshot restore. The store falls back over torn
        // or corrupt generations by itself; only an unrecoverable store
        // (every generation damaged) errors out.
        let mut snapshot_store = match &self.config.snapshot_dir {
            Some(dir) => Some(SnapshotStore::open(dir, self.config.snapshot_keep)?),
            None => None,
        };
        let restored = match &snapshot_store {
            Some(store) => store.load()?.map(|(_generation, snap)| snap),
            None => None,
        };
        let (core, mut epochs_done, mut present, mut unresponsive, mut initial_attach, retries) =
            match restored {
                Some(snap) => {
                    if snap.present.len() != n_users {
                        return Err(DaemonError::Protocol {
                            context: "snapshot is for a different scenario size".into(),
                        });
                    }
                    let core = ControllerCore::restore(core_config, snap.core)?;
                    (
                        core,
                        snap.epochs_done,
                        snap.present,
                        snap.unresponsive,
                        snap.initial_attach,
                        snap.retries,
                    )
                }
                None => (
                    ControllerCore::new(n_users, core_config),
                    0,
                    vec![false; n_users],
                    vec![false; n_users],
                    vec![None; n_users],
                    0,
                ),
            };

        // What reconnecting agents are told in the handshake: the saved
        // association at startup (always `None` on a cold start).
        let greeting: Arc<Vec<Option<usize>>> = Arc::new(core.association().to_vec());

        let (tx, rx) = inbox::channel::<Incoming>(self.config.inbox_cap, incoming_sheddable);
        let stop = Arc::new(AtomicBool::new(false));
        let workers = if self.config.workers > 0 {
            self.config.workers
        } else {
            n_users + 2
        };
        let pool = TaskPool::new(workers);
        self.listener.set_nonblocking(true)?;
        let acceptor = {
            let listener = self.listener.try_clone()?;
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            let greeting = Arc::clone(&greeting);
            let max_connections = self.config.max_connections;
            let read_stall = self.config.read_stall;
            // Live connections, shared with the reader tasks so the cap
            // reflects closures as they happen.
            let active = Arc::new(AtomicUsize::new(0));
            thread::spawn(move || {
                // The pool lives (and joins its readers) on this thread.
                let pool = pool;
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            if max_connections > 0
                                && active.load(Ordering::Relaxed) >= max_connections
                            {
                                // Refuse with a typed reply so the peer
                                // can tell overload from a dead daemon
                                // and back off instead of hammering.
                                obs::counter_inc("daemon.conns_rejected");
                                pool.execute(move || {
                                    let _ = stream.set_nodelay(true);
                                    if let Ok(sent) = wire::send_counted(
                                        &mut stream,
                                        &Envelope::Busy {
                                            limit: max_connections as u64,
                                        },
                                    ) {
                                        note_frame_out(sent);
                                    }
                                });
                                continue;
                            }
                            active.fetch_add(1, Ordering::Relaxed);
                            let tx = tx.clone();
                            let greeting = Arc::clone(&greeting);
                            let stop = Arc::clone(&stop);
                            let active = Arc::clone(&active);
                            pool.execute(move || {
                                serve_connection(stream, greeting, tx, stop, read_stall);
                                active.fetch_sub(1, Ordering::Relaxed);
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        drop(tx);

        let mut session = Session {
            core,
            deadlines: self.config.deadlines,
            writers: (0..n_users).map(|_| None).collect(),
            rx,
            retries,
            msgs_in: 0,
            latencies: Vec::new(),
            stop_reason: None,
        };

        let result = session
            .wait_for_agents(self.config.connect_deadline)
            .and_then(|()| {
                self.drive(
                    &mut session,
                    &mut snapshot_store,
                    &mut epochs_done,
                    &mut present,
                    &mut unresponsive,
                    &mut initial_attach,
                )
            });
        // Linger: keep the listener (and with it the metrics service)
        // alive for a beat before dismissing agents, so scrapers polling
        // over TCP deterministically observe the finished session.
        if !self.config.linger.is_zero() {
            thread::sleep(self.config.linger);
        }
        let started = Instant::now();
        // Graceful teardown happens even on error paths: tell every
        // connected agent to exit so their sockets close and the reader
        // pool can drain.
        session.shutdown_agents();
        stop.store(true, Ordering::Relaxed);
        // Agents that registered after the session loop stopped reading
        // still need a dismissal, or their reader tasks (and the pool
        // join inside the acceptor thread) would wait forever.
        while !acceptor.is_finished() {
            match session.rx.recv_timeout(Duration::from_millis(20)) {
                Ok(Incoming::Register { mut writer, .. }) => {
                    let _ = wire::send(&mut writer, &Envelope::Agent(ToAgent::Shutdown));
                }
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let _ = acceptor.join();
        let elapsed_teardown = started.elapsed();
        let (drive_elapsed, stopped) = result?;

        let physical_assoc = session.core.association().to_vec();
        let report = assemble_report(
            &self.scenario,
            &physical_assoc,
            SessionLedger {
                policy_name: self.config.policy.name().to_string(),
                present,
                unresponsive,
                initial_attach,
                crashed: Vec::new(),
                wedged: Vec::new(),
                declared_dead: session.core.declared_dead().to_vec(),
                directives: session.core.directives(),
                degraded_solves: session.core.degraded_solves(),
                retries: session.retries,
            },
        )?;
        let completed = !stopped && epochs_done == self.events.len();
        Ok(DaemonOutcome {
            report,
            completed,
            epochs_done,
            stats: DaemonStats {
                msgs_in: session.msgs_in,
                resolve_latencies: session.latencies.clone(),
                elapsed: drive_elapsed + elapsed_teardown,
            },
        })
    }

    /// Drives the configured events from `epochs_done` onward, mirroring
    /// the in-process rig's harness loop. Returns the wall-clock time
    /// spent and whether the run was stopped before finishing.
    fn drive(
        &self,
        session: &mut Session,
        snapshot_store: &mut Option<SnapshotStore>,
        epochs_done: &mut usize,
        present: &mut [bool],
        unresponsive: &mut [bool],
        initial_attach: &mut [Option<usize>],
    ) -> Result<(Duration, bool), DaemonError> {
        let started = Instant::now();
        let mut stopped = false;
        if self.config.stop_after.is_some_and(|k| *epochs_done >= k) {
            return Ok((started.elapsed(), true));
        }
        for (idx, &event) in self.events.iter().enumerate().skip(*epochs_done) {
            let epoch = idx as u64;
            let (i, is_join) = match event {
                SessionEvent::Join(i) => (i, true),
                SessionEvent::Leave(i) => (i, false),
            };
            if i < self.scenario.user_positions.len() && unresponsive[i] {
                // A client whose earlier event never completed is out of
                // the session: later events for it are skipped.
                *epochs_done = idx + 1;
                continue;
            }
            let n_users = self.scenario.user_positions.len();
            let valid = i < n_users && if is_join { !present[i] } else { present[i] };
            if !valid {
                return Err(TestbedError::InvalidConfig {
                    context: if is_join {
                        "join of an out-of-range or already-present client"
                    } else {
                        "leave of an out-of-range or absent client"
                    },
                }
                .into());
            }

            match session.drive_event(epoch, i, is_join)? {
                EventEnd::Completed => {
                    if is_join {
                        present[i] = true;
                        if initial_attach[i].is_none() {
                            // Strict-equivalent to the rig's read of the
                            // physical state: on a fault-free network the
                            // CC view after the join transaction *is* the
                            // physical attachment.
                            initial_attach[i] = session.core.association()[i];
                        }
                    } else {
                        present[i] = false;
                    }
                }
                EventEnd::Unresponsive => {
                    if is_join {
                        unresponsive[i] = true;
                    } else {
                        present[i] = false;
                    }
                }
                EventEnd::Stopped => {
                    stopped = true;
                    break;
                }
            }
            *epochs_done = idx + 1;
            if let Some(bound) = self.config.max_staleness {
                session.core.evict_stale(bound);
            }
            if let Some(store) = snapshot_store.as_mut() {
                // A crash on either side of the save is recoverable: before
                // it, the restarted daemon replays this event; after it, the
                // daemon resumes at the next one. Both replays are
                // byte-identical because the snapshot carries complete
                // decision state and agents re-derive theirs from the
                // handshake.
                crash_point!(CRASH_PRE_SNAPSHOT);
                let t0 = Instant::now();
                store.save(&DaemonSnapshot {
                    epochs_done: *epochs_done,
                    present: present.to_vec(),
                    unresponsive: unresponsive.to_vec(),
                    initial_attach: initial_attach.to_vec(),
                    retries: session.retries,
                    core: session.core.snapshot(),
                })?;
                obs::observe_duration("daemon.snapshot_write_us", t0.elapsed());
                crash_point!(CRASH_POST_SNAPSHOT);
            }
            if session.stop_reason.is_some() || self.config.stop_after == Some(*epochs_done) {
                stopped = true;
                break;
            }
        }
        Ok((started.elapsed(), stopped))
    }
}

/// Per-connection reader: handshake, then forward frames to the session
/// loop until the connection ends.
///
/// When `read_stall` is nonzero the socket read is *patient*: idling
/// between frames is free (and ends cleanly once `stop` is set, so a
/// silent control connection cannot hang teardown), but a peer that
/// stalls mid-frame past the budget loses the connection and is counted
/// in `daemon.read_timeouts`.
fn serve_connection(
    mut stream: TcpStream,
    greeting: Arc<Vec<Option<usize>>>,
    tx: InboxSender<Incoming>,
    stop: Arc<AtomicBool>,
    read_stall: Duration,
) {
    let _ = stream.set_nodelay(true);
    let patient = !read_stall.is_zero();
    let mid_frame_stalls = if patient {
        let _ = stream.set_read_timeout(Some(READ_TICK));
        (read_stall.as_millis() / READ_TICK.as_millis()).max(1) as u32
    } else {
        0
    };
    let recv = |stream: &mut TcpStream| -> std::io::Result<Option<(Envelope, usize)>> {
        if !patient {
            return wire::recv_counted(stream);
        }
        let mut keep_waiting = || !stop.load(Ordering::Relaxed);
        let mut patience = ReadPatience {
            keep_waiting: &mut keep_waiting,
            mid_frame_stalls,
        };
        let result = wire::recv_counted_patient(stream, &mut patience);
        if let Err(e) = &result {
            if e.kind() == std::io::ErrorKind::TimedOut {
                obs::counter_inc("daemon.read_timeouts");
            }
        }
        result
    };
    // Pre-handshake: the connection is a control channel until it sends
    // `Hello`. Control connections may issue any number of metrics
    // queries (each answered inline — safe here because no session-loop
    // writer shares this stream yet) and/or a stop request.
    let client = loop {
        match recv(&mut stream) {
            Ok(Some((Envelope::Hello { client, .. }, bytes))) if client < greeting.len() => {
                note_frame_in(bytes);
                break client;
            }
            Ok(Some((Envelope::Shutdown { reason }, bytes))) => {
                note_frame_in(bytes);
                obs::trace("daemon", format!("operator stop: {reason}"));
                let _ = tx.send(Incoming::Stop { reason });
                return;
            }
            Ok(Some((Envelope::MetricsRequest, bytes))) => {
                note_frame_in(bytes);
                obs::counter_inc("daemon.metrics_requests");
                let reply = Envelope::Metrics {
                    metrics: obs::snapshot(),
                };
                match wire::send_counted(&mut stream, &reply) {
                    Ok(sent) => note_frame_out(sent),
                    Err(_) => return,
                }
            }
            _ => return,
        }
    };
    match wire::send_counted(
        &mut stream,
        &Envelope::HelloAck {
            attached: greeting[client],
        },
    ) {
        Ok(sent) => note_frame_out(sent),
        Err(_) => return,
    }
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    if tx.send(Incoming::Register { client, writer }).is_err() {
        return;
    }
    loop {
        match recv(&mut stream) {
            Ok(Some((Envelope::Ctrl(msg), bytes))) => {
                note_frame_in(bytes);
                if tx.send(Incoming::Msg(msg)).is_err() {
                    return;
                }
            }
            Ok(Some((Envelope::Shutdown { reason }, bytes))) => {
                note_frame_in(bytes);
                obs::trace("daemon", format!("operator stop: {reason}"));
                let _ = tx.send(Incoming::Stop { reason });
            }
            Ok(Some((Envelope::MetricsRequest, bytes))) => {
                // A registered agent connection shares its write half
                // with the session loop; replying here could interleave
                // frames. Count and drop.
                note_frame_in(bytes);
                obs::counter_inc("daemon.metrics_requests");
            }
            Ok(Some(_)) | Ok(None) | Err(_) => {
                let _ = tx.send(Incoming::Gone { client });
                return;
            }
        }
    }
}

/// The session loop's mutable state: the decision core plus the TCP
/// transport bookkeeping.
struct Session {
    core: ControllerCore,
    deadlines: Deadlines,
    writers: Vec<Option<TcpStream>>,
    rx: Inbox<Incoming>,
    retries: usize,
    msgs_in: usize,
    latencies: Vec<Duration>,
    stop_reason: Option<String>,
}

/// A directive awaiting its ack over TCP.
struct PendingDirective {
    client: usize,
    extender: usize,
    seq: u64,
    attempt: u32,
    deadline: Instant,
}

impl Session {
    /// Blocks until every expected agent has registered.
    fn wait_for_agents(&mut self, budget: Duration) -> Result<(), DaemonError> {
        let deadline = Instant::now() + budget;
        while self.writers.iter().any(Option::is_none) {
            let wait = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(wait) {
                Ok(Incoming::Register { client, writer }) => {
                    self.writers[client] = Some(writer);
                }
                Ok(Incoming::Gone { client }) => {
                    self.writers[client] = None;
                }
                Ok(Incoming::Stop { reason }) => {
                    self.stop_reason = Some(reason);
                    return Ok(());
                }
                Ok(Incoming::Msg(_)) => {
                    // Agents do not speak before their first command;
                    // drop pre-session noise.
                    self.msgs_in += 1;
                }
                Err(RecvTimeoutError::Timeout) => {
                    let missing: Vec<usize> = self
                        .writers
                        .iter()
                        .enumerate()
                        .filter_map(|(i, w)| w.is_none().then_some(i))
                        .collect();
                    return Err(DaemonError::Timeout {
                        waiting_for: format!("agents {missing:?} to connect"),
                    });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(TestbedError::ChannelClosed {
                        endpoint: "acceptor",
                    }
                    .into())
                }
            }
        }
        Ok(())
    }

    /// Drives one join/leave event: send the command, process the
    /// resulting report/departure through the core, run the directive
    /// transaction, retransmitting the command on the rig's schedule.
    fn drive_event(
        &mut self,
        epoch: u64,
        client: usize,
        is_join: bool,
    ) -> Result<EventEnd, DaemonError> {
        if self.stop_reason.is_some() {
            return Ok(EventEnd::Stopped);
        }
        for attempt in 1..=self.deadlines.event_attempts {
            if attempt > 1 {
                self.retries += 1;
            }
            let cmd = if is_join {
                ToAgent::Join { epoch, attempt }
            } else {
                ToAgent::Leave { epoch, attempt }
            };
            if !self.send_agent(client, &cmd) {
                // No connection to the client: its event can never
                // complete. Treat like the rig's silent-agent path.
                return Ok(EventEnd::Unresponsive);
            }
            let deadline = Instant::now() + self.deadlines.event;
            loop {
                let wait = deadline.saturating_duration_since(Instant::now());
                let incoming = match self.rx.recv_timeout(wait) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(TestbedError::ChannelClosed {
                            endpoint: "acceptor",
                        }
                        .into())
                    }
                };
                match incoming {
                    Incoming::Register { client: c, writer } => {
                        self.writers[c] = Some(writer);
                    }
                    Incoming::Gone { client: c } => {
                        self.writers[c] = None;
                    }
                    Incoming::Stop { reason } => {
                        self.stop_reason = Some(reason);
                        return Ok(EventEnd::Stopped);
                    }
                    Incoming::Msg(msg) => {
                        self.msgs_in += 1;
                        if let Some(done_epoch) = self.process_event_msg(msg)? {
                            if done_epoch == epoch {
                                return Ok(EventEnd::Completed);
                            }
                        }
                    }
                }
            }
        }
        Ok(EventEnd::Unresponsive)
    }

    /// Feeds one protocol message through the core; returns the epoch of
    /// a completed event transaction, if this message triggered one.
    fn process_event_msg(&mut self, msg: ToController) -> Result<Option<u64>, DaemonError> {
        match msg {
            ToController::Report {
                client,
                epoch,
                rates,
                attached,
            } => {
                if self.core.is_duplicate(epoch) {
                    return Ok(None);
                }
                let t0 = Instant::now();
                let directives = self.core.handle_report(client, epoch, &rates, attached)?;
                self.transact(directives, epoch)?;
                let took = t0.elapsed();
                obs::observe_duration("daemon.resolve_us", took);
                self.latencies.push(took);
                Ok(Some(epoch))
            }
            ToController::Departed { client, epoch } => {
                if self.core.is_duplicate(epoch) {
                    return Ok(None);
                }
                let t0 = Instant::now();
                let directives = self.core.handle_departed(client, epoch)?;
                self.transact(directives, epoch)?;
                let took = t0.elapsed();
                obs::observe_duration("daemon.resolve_us", took);
                self.latencies.push(took);
                Ok(Some(epoch))
            }
            ToController::Ack {
                client,
                seq,
                extender,
            } => {
                // A late ack refreshes the CC view iff it matches the
                // newest directive.
                self.core.handle_ack(client, seq, extender);
                Ok(None)
            }
        }
    }

    /// One directive transaction over TCP — the rig's `run_transaction`
    /// with socket writes for sends and the merged queue for receives.
    fn transact(&mut self, directives: Vec<Directive>, epoch: u64) -> Result<(), DaemonError> {
        let mut pending: Vec<PendingDirective> = Vec::new();
        self.enqueue(&mut pending, directives);
        while !pending.is_empty() {
            let now = Instant::now();
            let mut d = 0;
            while d < pending.len() {
                if pending[d].deadline > now {
                    d += 1;
                    continue;
                }
                if pending[d].attempt >= self.deadlines.ack_attempts {
                    let casualty = pending.remove(d).client;
                    // The dead client's load vanishes: re-optimize the
                    // survivors (may supersede other in-flight
                    // directives).
                    let replan = self.core.declare_dead(casualty)?;
                    self.enqueue(&mut pending, replan);
                    d = 0;
                } else {
                    let p = &mut pending[d];
                    p.attempt += 1;
                    self.retries += 1;
                    p.deadline = now + self.deadlines.backoff(p.attempt);
                    let (client, extender, seq, attempt) = (p.client, p.extender, p.seq, p.attempt);
                    self.send_directive(client, extender, seq, attempt);
                    d += 1;
                }
            }
            if pending.is_empty() {
                break;
            }
            let next = pending
                .iter()
                .map(|p| p.deadline)
                .min()
                .expect("pending is non-empty");
            let wait = next.saturating_duration_since(Instant::now());
            let incoming = match self.rx.recv_timeout(wait) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(TestbedError::ChannelClosed { endpoint: "client" }.into())
                }
            };
            match incoming {
                Incoming::Msg(ToController::Ack {
                    client,
                    seq,
                    extender,
                }) => {
                    self.msgs_in += 1;
                    if self.core.handle_ack(client, seq, extender) {
                        pending.retain(|p| !(p.client == client && p.seq == seq));
                    }
                }
                Incoming::Msg(ToController::Report { epoch: e, .. })
                | Incoming::Msg(ToController::Departed { epoch: e, .. }) => {
                    self.msgs_in += 1;
                    // Retransmissions of the current (or an older) event
                    // are expected; a genuinely new event mid-transaction
                    // means serialization broke.
                    if e > epoch {
                        return Err(TestbedError::AssignmentFailed {
                            context: "unexpected message during directive transaction".to_string(),
                        }
                        .into());
                    }
                }
                Incoming::Register { client, writer } => {
                    self.writers[client] = Some(writer);
                }
                Incoming::Gone { client } => {
                    // The ack deadline machinery turns a dead connection
                    // into a declared-dead client.
                    self.writers[client] = None;
                }
                Incoming::Stop { reason } => {
                    // Finish converging first; the driver stops after
                    // this event.
                    self.stop_reason.get_or_insert(reason);
                }
            }
        }
        Ok(())
    }

    /// Adds planned directives to the pending set (superseding in-flight
    /// ones for the same client) and performs their first transmission.
    fn enqueue(&mut self, pending: &mut Vec<PendingDirective>, directives: Vec<Directive>) {
        for dir in directives {
            pending.retain(|p| p.client != dir.client);
            pending.push(PendingDirective {
                client: dir.client,
                extender: dir.extender,
                seq: dir.seq,
                attempt: 1,
                deadline: Instant::now() + self.deadlines.backoff(1),
            });
            self.send_directive(dir.client, dir.extender, dir.seq, 1);
        }
    }

    /// Sends one directive transmission; a broken pipe drops the writer
    /// and lets the ack machinery handle the silence.
    fn send_directive(&mut self, client: usize, extender: usize, seq: u64, attempt: u32) {
        let env = Envelope::Client(ToClient::Directive {
            extender,
            seq,
            attempt,
        });
        if let Some(w) = self.writers[client].as_mut() {
            match wire::send_counted(w, &env) {
                Ok(sent) => note_frame_out(sent),
                Err(_) => self.writers[client] = None,
            }
        }
    }

    /// Sends one harness command; `false` when the client has no usable
    /// connection.
    fn send_agent(&mut self, client: usize, cmd: &ToAgent) -> bool {
        let env = Envelope::Agent(cmd.clone());
        match self.writers[client].as_mut() {
            Some(w) => match wire::send_counted(w, &env) {
                Ok(sent) => {
                    note_frame_out(sent);
                    true
                }
                Err(_) => {
                    self.writers[client] = None;
                    false
                }
            },
            None => false,
        }
    }

    /// Tells every connected agent to exit (so sockets close and reader
    /// tasks drain) and flushes the writers.
    fn shutdown_agents(&mut self) {
        for w in self.writers.iter_mut().flatten() {
            if let Ok(sent) = wire::send_counted(w, &Envelope::Agent(ToAgent::Shutdown)) {
                note_frame_out(sent);
            }
            let _ = w.flush();
        }
    }
}
