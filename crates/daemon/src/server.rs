//! The `wolt-daemon` server: the Central Controller as a long-running
//! TCP service.
//!
//! The in-process rig ([`wolt_testbed::rig`]) wires the controller and
//! the client agents together with mpsc channels inside one process. The
//! daemon replaces the channel transport with TCP — agents connect over
//! loopback (or a LAN), handshake with [`Envelope::Hello`], and then
//! speak exactly the [`wolt_testbed::protocol`] messages the rig speaks —
//! while every *decision* (planning, sequencing, epoch dedup,
//! declared-dead bookkeeping) stays in the shared
//! [`wolt_testbed::ControllerCore`]. Because both transports drive the
//! same core with the same inputs in the same order, a clean TCP session
//! produces a [`SessionReport`] whose canonical rendering is
//! byte-identical to the in-process run for the same scenario, seed, and
//! policy.
//!
//! # Concurrency
//!
//! One reader task per connection (on a [`wolt_support::pool::TaskPool`])
//! parses frames and forwards them into a single bounded
//! [`inbox`](crate::inbox) queue; the session loop — a
//! [`SessionEngine`](crate::engine::SessionEngine) stepped by this one
//! thread — is the only code that touches the controller core or writes
//! to agent sockets. The accept loop runs on its own thread with a
//! nonblocking listener so shutdown is prompt. (`Daemon` is exactly a
//! one-engine fleet: `wolt_fleet` steps many of these engines on shared
//! shard threads.)
//!
//! # Persistence
//!
//! After every completed epoch the daemon snapshots its full state (see
//! [`DaemonSnapshot`](crate::snapshot::DaemonSnapshot)) through the
//! generational [`SnapshotStore`](crate::store::SnapshotStore): each save
//! is a fresh checksummed `snapshot.<gen>.json` in `snapshot_dir`, and
//! restore rolls back over torn or corrupt generations to the newest one
//! that verifies. A restarted daemon restores that snapshot, hands each
//! reconnecting agent its saved attachment in the handshake (the radio
//! association outlives the controller process), and resumes at the
//! saved epoch — issuing no extra directives for work already done.
//!
//! # Overload
//!
//! Three independent guards keep a misbehaving or excessive peer from
//! taking the daemon down, each with an exact counter: connections past
//! `max_connections` are refused with a typed [`Envelope::Busy`] reply
//! (`daemon.conns_rejected`); a peer that stalls mid-frame past
//! `read_stall` loses its connection (`daemon.read_timeouts`) while
//! idling *between* frames stays free; and the session inbox is bounded
//! at `inbox_cap` entries, shedding the oldest queued telemetry first —
//! never acks or lifecycle messages (`daemon.frames_shed`).

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use wolt_plc::capacity::CapacityEstimator;
use wolt_sim::Scenario;
use wolt_support::obs;
use wolt_testbed::{ControllerPolicy, Deadlines, SessionEvent, SessionReport};

use crate::engine::{self, EngineStep, HelloDecision, Incoming, SessionEngine};
use crate::store;
use crate::wire::{self, Envelope};
use crate::DaemonError;

pub use crate::engine::{CRASH_POST_SNAPSHOT, CRASH_PRE_SNAPSHOT};

/// Daemon configuration beyond the scenario and event list.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Association logic at the CC.
    pub policy: ControllerPolicy,
    /// Offline PLC capacity estimation procedure (measurement noise).
    pub estimator: CapacityEstimator,
    /// Deadline and retry budgets, shared with the in-process rig.
    pub deadlines: Deadlines,
    /// Seed for the capacity-estimation noise (the rig's `seed`).
    pub noise_seed: u64,
    /// Directory for the generational snapshot store
    /// ([`crate::store::SnapshotStore`]); `None` disables persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Snapshot generations kept on disk (must be ≥ 1 when persistence
    /// is on); older generations are pruned after each save.
    pub snapshot_keep: usize,
    /// Stop (snapshot + graceful shutdown) after this many events have
    /// completed in total — an operational kill switch and the hook the
    /// restart tests use to stop deterministically mid-session.
    pub stop_after: Option<usize>,
    /// How long to wait for every agent to connect before giving up.
    pub connect_deadline: Duration,
    /// Reader-pool workers; `0` sizes the pool to `n_users + 2` (one per
    /// expected agent plus slack for an operator connection).
    pub workers: usize,
    /// Evict telemetry entries staler than this many epochs after each
    /// event. Off by default: agents report once at join, so a client's
    /// staleness grows with every later epoch and an aggressive bound
    /// would evict *live* clients (and change planning inputs). Enable
    /// only for open-ended deployments where departed clients may vanish
    /// without a notice.
    pub max_staleness: Option<u64>,
    /// How long to keep the listener (and metrics service) alive after
    /// the last event completes, before dismissing agents and shutting
    /// down. Zero by default. Gives external scrapers a deterministic
    /// window to read the finished session's counters over the
    /// [`Envelope::MetricsRequest`] envelope.
    pub linger: Duration,
    /// Concurrent connections accepted before new arrivals are refused
    /// with [`Envelope::Busy`]; `0` means unlimited.
    pub max_connections: usize,
    /// Session-inbox bound; past it the oldest queued telemetry frame is
    /// shed (acks and lifecycle messages never are). `0` means
    /// unbounded.
    pub inbox_cap: usize,
    /// How long a peer may stall *mid-frame* before its connection is
    /// dropped (idle between frames is always allowed). `Duration::ZERO`
    /// disables the deadline (fully blocking reads, as before).
    pub read_stall: Duration,
    /// Drain-what's-queued telemetry coalescing: the session engine
    /// takes whole consecutive runs of queued scan reports off the
    /// inbox, keeps each client's newest (`daemon.frames_coalesced`
    /// counts the rest), and plans once per run. Batching is structural,
    /// never time-based, so a clean serialized session — at most one
    /// report queued at a time — is byte-identical with it on or off.
    /// On by default.
    pub coalesce: bool,
}

impl DaemonConfig {
    /// Config with the given policy and defaults for everything else.
    pub fn new(policy: ControllerPolicy) -> Self {
        Self {
            policy,
            estimator: CapacityEstimator::default(),
            deadlines: Deadlines::default(),
            noise_seed: 0,
            snapshot_dir: None,
            snapshot_keep: store::DEFAULT_KEEP,
            stop_after: None,
            connect_deadline: Duration::from_secs(30),
            workers: 0,
            max_staleness: None,
            linger: Duration::ZERO,
            max_connections: 0,
            inbox_cap: 0,
            read_stall: Duration::from_secs(5),
            coalesce: true,
        }
    }
}

/// Transport-level counters from one daemon run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonStats {
    /// Protocol messages received from agents (reports, acks,
    /// departures).
    pub msgs_in: usize,
    /// Per-event re-solve latency: from receiving the triggering report
    /// to the directive transaction completing (all acks in).
    pub resolve_latencies: Vec<Duration>,
    /// Wall-clock time spent driving the session (agents connected →
    /// last event done).
    pub elapsed: Duration,
}

/// What one daemon run produced.
#[derive(Debug, Clone)]
pub struct DaemonOutcome {
    /// The evaluated session outcome (partial if the run was stopped).
    pub report: SessionReport,
    /// Whether every configured event completed.
    pub completed: bool,
    /// Events completed in total (including ones restored from a
    /// snapshot).
    pub epochs_done: usize,
    /// Transport counters.
    pub stats: DaemonStats,
}

/// The Central Controller as a TCP server.
pub struct Daemon {
    listener: TcpListener,
    scenario: Scenario,
    events: Vec<SessionEvent>,
    config: DaemonConfig,
}

impl Daemon {
    /// Binds the daemon's listening socket.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when the address cannot be bound;
    /// [`DaemonError::InvalidConfig`] for an empty scenario or zero
    /// retry budgets.
    pub fn bind(
        addr: impl ToSocketAddrs,
        scenario: Scenario,
        events: Vec<SessionEvent>,
        config: DaemonConfig,
    ) -> Result<Self, DaemonError> {
        if scenario.user_positions.is_empty() || scenario.extender_positions.is_empty() {
            return Err(DaemonError::InvalidConfig {
                context: "scenario needs at least one user and one extender".into(),
            });
        }
        if config.deadlines.event_attempts == 0 || config.deadlines.ack_attempts == 0 {
            return Err(DaemonError::InvalidConfig {
                context: "deadlines need at least one attempt per message".into(),
            });
        }
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            scenario,
            events,
            config,
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the OS failure to report the socket address.
    pub fn local_addr(&self) -> Result<SocketAddr, DaemonError> {
        Ok(self.listener.local_addr()?)
    }

    /// Runs the session to completion (or a stop request) and returns
    /// the evaluated outcome.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Timeout`] when the expected agents never connect;
    /// [`DaemonError::Testbed`] for session-machinery failures;
    /// [`DaemonError::Io`] for socket failures.
    pub fn run(self) -> Result<DaemonOutcome, DaemonError> {
        let n_users = self.scenario.user_positions.len();
        let workers = if self.config.workers > 0 {
            self.config.workers
        } else {
            n_users + 2
        };
        let linger = self.config.linger;
        let max_connections = self.config.max_connections;
        let read_stall = self.config.read_stall;

        // The daemon is a one-engine fleet: a site-less engine plus an
        // accept path that routes every hello to it.
        let (mut engine, tx) = SessionEngine::new("", self.scenario, self.events, self.config)?;
        let greeting = engine.greeting();
        let stop = Arc::new(AtomicBool::new(false));

        let handler: Arc<dyn Fn(TcpStream) + Send + Sync> = {
            let stop = Arc::clone(&stop);
            let tx = tx.clone();
            Arc::new(move |stream| {
                let route = |client: usize, site: Option<&str>| -> HelloDecision {
                    if let Some(site) = site {
                        // This daemon hosts exactly one anonymous site; a
                        // sited hello is looking for a fleet.
                        return HelloDecision::Reject(Envelope::SiteGone {
                            site: site.to_string(),
                        });
                    }
                    if client < greeting.len() {
                        HelloDecision::Accept {
                            sender: tx.clone(),
                            attached: greeting[client],
                        }
                    } else {
                        HelloDecision::Close
                    }
                };
                let control = |stream: &mut TcpStream, envelope: Envelope| -> bool {
                    match envelope {
                        Envelope::Shutdown { reason } => {
                            obs::trace("daemon", format!("operator stop: {reason}"));
                            let _ = tx.send(Incoming::Stop { reason });
                            false
                        }
                        Envelope::MetricsRequest => {
                            obs::counter_inc("daemon.metrics_requests");
                            let reply = Envelope::Metrics {
                                metrics: obs::snapshot(),
                            };
                            match wire::send_counted(stream, &reply) {
                                Ok(sent) => {
                                    engine::note_frame_out(sent);
                                    true
                                }
                                Err(_) => false,
                            }
                        }
                        Envelope::Fleet(op) => {
                            // Answer honestly so `wolt fleet …` against a
                            // single-site daemon fails with a reason, not
                            // a hang.
                            let reply = Envelope::FleetAck {
                                op: op.name().to_string(),
                                site: op.site().to_string(),
                                ok: false,
                                detail: "this daemon is not a fleet".to_string(),
                            };
                            match wire::send_counted(stream, &reply) {
                                Ok(sent) => {
                                    engine::note_frame_out(sent);
                                    true
                                }
                                Err(_) => false,
                            }
                        }
                        _ => false,
                    }
                };
                engine::serve_connection(stream, &stop, read_stall, &route, &control);
            })
        };
        let acceptor = engine::spawn_acceptor(
            self.listener,
            Arc::clone(&stop),
            workers,
            max_connections,
            handler,
        )?;
        drop(tx);

        let result = loop {
            match engine.step() {
                Ok(EngineStep::Finished) => break Ok(()),
                Ok(_) => {}
                Err(e) => break Err(e),
            }
        };
        // Linger: keep the listener (and with it the metrics service)
        // alive for a beat before dismissing agents, so scrapers polling
        // over TCP deterministically observe the finished session.
        if !linger.is_zero() {
            thread::sleep(linger);
        }
        // Graceful teardown happens even on error paths: tell every
        // connected agent to exit so their sockets close and the reader
        // pool can drain.
        engine.dismiss_agents();
        stop.store(true, Ordering::Relaxed);
        // Agents that registered after the session loop stopped reading
        // still need a dismissal, or their reader tasks (and the pool
        // join inside the acceptor thread) would wait forever.
        while !acceptor.is_finished() {
            if engine.reap_strays(Duration::from_millis(20)) {
                break;
            }
        }
        let _ = acceptor.join();
        result?;
        engine.finish()
    }
}
