//! `wolt-daemon` — the WOLT Central Controller as a networked service.
//!
//! The paper's §V-A architecture is a server ("the CC") that laptops
//! talk to over the network. The in-process testbed
//! ([`wolt_testbed::rig`]) emulates that with threads and channels; this
//! crate runs it for real: a TCP [`server::Daemon`] speaking a
//! length-prefixed JSON wire protocol ([`wire`]), an agent client
//! ([`agent::run_agent`]) for the laptop side, and a crash-safe
//! generational snapshot store ([`store::SnapshotStore`]) so a restarted
//! — or killed — controller resumes mid-session without re-issuing
//! directives, rolling back over torn writes to the newest generation
//! that checksums clean.
//!
//! Every association *decision* lives in the shared
//! [`wolt_testbed::ControllerCore`]; this crate contributes only
//! transport. That is what makes the daemon's clean-session
//! [`wolt_testbed::SessionReport`] canonically byte-identical to
//! [`wolt_testbed::run_session`] for the same (scenario, seed, policy):
//! both transports feed the identical core the identical inputs in the
//! identical order.
//!
//! Hermetic like the rest of the workspace: `std::net` only, no external
//! crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod engine;
pub mod inbox;
pub mod server;
pub mod snapshot;
pub mod store;
pub mod wire;

mod error;

pub use agent::{
    run_agent, run_agent_burst, run_agent_with, run_site_agent, AgentOutcome, AgentRetry,
};
pub use engine::{EngineStep, Incoming, SessionEngine};
pub use error::{DaemonError, SnapshotCorrupt};
pub use server::{Daemon, DaemonConfig, DaemonOutcome, DaemonStats};
pub use snapshot::DaemonSnapshot;
pub use store::SnapshotStore;
pub use wire::Envelope;

/// Every named crash point the daemon's write paths declare, with the
/// most scheduled hits that still land inside a short session (a seeded
/// [`wolt_support::crash::CrashPlan`] picks a hit count in
/// `1..=max_hits` per point). This is the catalogue the chaos harness
/// sweeps: killing the daemon at any of these points must leave a store
/// a restart recovers from with a byte-identical final report.
pub fn crash_catalogue() -> Vec<(&'static str, u64)> {
    vec![
        (store::CRASH_MID_WRITE, 3),
        (store::CRASH_PRE_PRUNE, 3),
        (server::CRASH_PRE_SNAPSHOT, 3),
        (server::CRASH_POST_SNAPSHOT, 3),
        (wolt_testbed::codec::CRASH_MID_FRAME, 5),
    ]
}
