//! `wolt-daemon` — the WOLT Central Controller as a networked service.
//!
//! The paper's §V-A architecture is a server ("the CC") that laptops
//! talk to over the network. The in-process testbed
//! ([`wolt_testbed::rig`]) emulates that with threads and channels; this
//! crate runs it for real: a TCP [`server::Daemon`] speaking a
//! length-prefixed JSON wire protocol ([`wire`]), an agent client
//! ([`agent::run_agent`]) for the laptop side, and durable
//! [`snapshot::DaemonSnapshot`]s so a restarted controller resumes
//! mid-session without re-issuing directives.
//!
//! Every association *decision* lives in the shared
//! [`wolt_testbed::ControllerCore`]; this crate contributes only
//! transport. That is what makes the daemon's clean-session
//! [`wolt_testbed::SessionReport`] canonically byte-identical to
//! [`wolt_testbed::run_session`] for the same (scenario, seed, policy):
//! both transports feed the identical core the identical inputs in the
//! identical order.
//!
//! Hermetic like the rest of the workspace: `std::net` only, no external
//! crates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod server;
pub mod snapshot;
pub mod wire;

mod error;

pub use agent::{run_agent, AgentOutcome};
pub use error::DaemonError;
pub use server::{Daemon, DaemonConfig, DaemonOutcome, DaemonStats};
pub use snapshot::DaemonSnapshot;
pub use wire::Envelope;
