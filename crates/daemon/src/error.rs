use std::error::Error;
use std::fmt;
use std::io;

use wolt_testbed::TestbedError;

/// Errors surfaced by the daemon server and agent client.
#[derive(Debug)]
#[non_exhaustive]
pub enum DaemonError {
    /// A socket or filesystem operation failed.
    Io(io::Error),
    /// The peer violated the wire protocol (bad handshake, unexpected
    /// envelope, malformed snapshot).
    Protocol {
        /// What went wrong.
        context: String,
    },
    /// The shared controller/session machinery rejected the session.
    Testbed(TestbedError),
    /// A bounded wait expired (e.g. not every agent connected in time).
    Timeout {
        /// What the daemon was blocked on.
        waiting_for: String,
    },
    /// A configuration parameter was outside its valid range.
    InvalidConfig {
        /// Human-readable description.
        context: String,
    },
    /// The snapshot store cannot be restored from; see
    /// [`SnapshotCorrupt`] for the typed reasons. A *partially* damaged
    /// store is not an error: load falls back to the newest generation
    /// that verifies.
    SnapshotCorrupt(SnapshotCorrupt),
    /// A bounded retry loop exhausted its attempts (e.g. the agent's
    /// reconnect backoff) without success.
    GaveUp {
        /// What was being attempted.
        attempting: String,
        /// How many attempts were made.
        attempts: u32,
        /// The final attempt's failure.
        last_error: String,
    },
    /// The daemon refused a connection because its connection cap is
    /// reached (the wire's typed `busy` reply).
    Busy {
        /// The daemon's configured connection limit.
        limit: u64,
    },
    /// The daemon does not host (or no longer hosts) the site this
    /// agent's hello named — the wire's typed `site_gone` reply. Fatal
    /// for the agent: a drained or removed site never comes back under
    /// this address, so the reconnect loop must not retry it.
    SiteGone {
        /// The site the hello named (empty when the hello named none).
        site: String,
    },
}

/// Why a snapshot store refused to restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotCorrupt {
    /// Snapshot generations exist on disk but none verifies — restoring
    /// would either lose acknowledged state or load garbage, so the
    /// operator must decide (delete the store for a cold start, or
    /// repair it).
    AllInvalid {
        /// The store directory and every generation's damage.
        context: String,
    },
    /// A generation verified (intact magic, framing, checksum) but its
    /// header stamps a *different* site id: the directory holds another
    /// site's snapshots — a mis-wired fleet root, not bit rot. Loading
    /// it would silently adopt another segment's controller state, so
    /// this refuses immediately (no fallback to older generations,
    /// which would be equally foreign).
    WrongSite {
        /// The store directory.
        dir: String,
        /// The site this store was opened for.
        expected: String,
        /// The site stamped in the snapshot header.
        found: String,
    },
}

impl fmt::Display for SnapshotCorrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotCorrupt::AllInvalid { context } => {
                write!(f, "snapshot store unrecoverable: {context}")
            }
            SnapshotCorrupt::WrongSite {
                dir,
                expected,
                found,
            } => write!(
                f,
                "snapshot store {dir} belongs to site {found:?}, not {expected:?}"
            ),
        }
    }
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "io error: {e}"),
            DaemonError::Protocol { context } => write!(f, "protocol error: {context}"),
            DaemonError::Testbed(e) => write!(f, "{e}"),
            DaemonError::Timeout { waiting_for } => {
                write!(f, "deadline expired waiting for {waiting_for}")
            }
            DaemonError::InvalidConfig { context } => write!(f, "invalid config: {context}"),
            DaemonError::SnapshotCorrupt(reason) => write!(f, "{reason}"),
            DaemonError::GaveUp {
                attempting,
                attempts,
                last_error,
            } => write!(
                f,
                "gave up {attempting} after {attempts} attempts (last error: {last_error})"
            ),
            DaemonError::Busy { limit } => {
                write!(f, "daemon is at its connection cap ({limit})")
            }
            DaemonError::SiteGone { site } => {
                write!(f, "site {site:?} is not hosted here (drained or removed)")
            }
        }
    }
}

impl Error for DaemonError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DaemonError::Io(e) => Some(e),
            DaemonError::Testbed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DaemonError {
    fn from(e: io::Error) -> Self {
        DaemonError::Io(e)
    }
}

impl From<TestbedError> for DaemonError {
    fn from(e: TestbedError) -> Self {
        DaemonError::Testbed(e)
    }
}

impl From<wolt_support::json::JsonError> for DaemonError {
    fn from(e: wolt_support::json::JsonError) -> Self {
        DaemonError::Protocol {
            context: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: DaemonError = io::Error::new(io::ErrorKind::AddrInUse, "busy").into();
        assert!(e.to_string().contains("busy"));
        let e: DaemonError = TestbedError::ChannelClosed { endpoint: "agent" }.into();
        assert!(e.to_string().contains("agent"));
        let e = DaemonError::Timeout {
            waiting_for: "agent 3 to connect".into(),
        };
        assert!(e.to_string().contains("agent 3"));
        let e = DaemonError::SiteGone {
            site: "floor-3".into(),
        };
        assert!(e.to_string().contains("floor-3"));
        let e = DaemonError::SnapshotCorrupt(SnapshotCorrupt::WrongSite {
            dir: "/tmp/fleet/alpha".into(),
            expected: "alpha".into(),
            found: "beta".into(),
        });
        assert!(e.to_string().contains("beta"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DaemonError>();
    }
}
