//! Process-wide observability: monotone counters, gauges, fixed-bucket
//! histograms, and a bounded event-trace ring — hermetic, `std`-only,
//! and built so that *enabling it never changes results*.
//!
//! # Determinism contract
//!
//! The registry is designed around two invariants, both pinned by the
//! workspace regression suite (`tests/tests/obs_determinism.rs` and
//! `tests/tests/golden_reports.rs`):
//!
//! 1. **Non-perturbation.** Recording a metric never branches the code
//!    under measurement: every canonical `SessionReport` is byte-identical
//!    with observability enabled or disabled. Instruments only ever
//!    *add* to atomics (or thread-local shards); they never feed back
//!    into solver or controller decisions.
//! 2. **Thread-count determinism.** Counter and histogram totals are
//!    sums of commutative additions, and [`crate::pool::par_map`] gives
//!    each worker a private [`Shard`] that is merged back **in worker
//!    index order** once all workers have joined. A run at
//!    `WOLT_THREADS=8` therefore reports exactly the totals of the same
//!    run at `WOLT_THREADS=1`.
//!
//! The trace ring is the deliberate exception: it records wall-clock
//! interleavings for humans and is **excluded** from the determinism
//! contract (bounded, lossy, ordering reflects the actual schedule).
//!
//! # Enabling and disabling
//!
//! Observability is on by default. Set the `WOLT_OBS` environment
//! variable to `0`, `off`, `false`, or `no` before first use — or call
//! [`set_enabled`] — to turn recording off; [`snapshot`] still works and
//! simply reports whatever was recorded while enabled.
//!
//! # Example
//!
//! ```
//! use wolt_support::obs;
//!
//! let solves = obs::counter("example.solves");
//! solves.inc();
//! obs::observe_us("example.solve_us", 1_250);
//! let snap = obs::snapshot();
//! assert!(snap.counters["example.solves"] >= 1);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

use crate::json::{FromJson, Json, JsonError, ToJson};

/// Environment variable consulted once, at first registry use: values
/// `0`, `off`, `false`, or `no` (case-insensitive) start the process
/// with recording disabled.
pub const OBS_ENV: &str = "WOLT_OBS";

/// Default histogram bucket upper bounds, in microseconds: a coarse
/// latency ladder from 50µs to 5s. Values above the last bound land in
/// the overflow bucket. The bounds are compile-time constants so every
/// process — any thread count, any machine — buckets identically.
pub const DEFAULT_TIME_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// Maximum number of events retained by the trace ring; older events are
/// dropped (the ring is diagnostic, not a durable log).
pub const TRACE_CAPACITY: usize = 256;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct HistCells {
    bounds: &'static [u64],
    /// One cell per bound plus a final overflow cell.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCells {
    fn new(bounds: &'static [u64]) -> Self {
        Self {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket_index(&self, value: u64) -> usize {
        self.bounds.partition_point(|&b| b < value)
    }

    fn record(&self, value: u64) {
        self.buckets[self.bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn reset(&self) {
        for cell in &self.buckets {
            cell.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

struct TraceRing {
    next_seq: u64,
    events: std::collections::VecDeque<TraceEvent>,
}

struct Registry {
    enabled: AtomicBool,
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<AtomicI64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<HistCells>>>,
    trace: Mutex<TraceRing>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let enabled = match std::env::var(OBS_ENV) {
            Ok(raw) => !matches!(
                raw.trim().to_ascii_lowercase().as_str(),
                "0" | "off" | "false" | "no"
            ),
            Err(_) => true,
        };
        Registry {
            enabled: AtomicBool::new(enabled),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            trace: Mutex::new(TraceRing {
                next_seq: 0,
                events: std::collections::VecDeque::with_capacity(TRACE_CAPACITY),
            }),
        }
    })
}

/// Whether recording is currently enabled.
pub fn enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide. Registration and snapshots
/// work either way; only the record operations become no-ops.
pub fn set_enabled(on: bool) {
    registry().enabled.store(on, Ordering::Relaxed);
}

/// Zeroes every registered counter, gauge, and histogram and clears the
/// trace ring, leaving registrations and the enabled flag untouched.
/// Intended for tests that assert exact totals.
pub fn reset() {
    let reg = registry();
    for cell in reg.counters.read().expect("obs lock").values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in reg.gauges.read().expect("obs lock").values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cells in reg.histograms.read().expect("obs lock").values() {
        cells.reset();
    }
    let mut ring = reg.trace.lock().expect("obs lock");
    ring.events.clear();
    ring.next_seq = 0;
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotone counter handle. Cheap to clone; all clones share one cell.
///
/// Obtain with [`counter`]; hot paths should cache the handle (e.g. in a
/// `OnceLock`) instead of re-looking it up by name on every increment.
#[derive(Clone)]
pub struct Counter {
    name: &'static str,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter (no-op while recording is disabled).
    ///
    /// If the calling thread has an installed [`Shard`] the addition is
    /// buffered there and becomes globally visible only when the shard
    /// is merged — [`Counter::get`] on another thread will not see it
    /// until then.
    pub fn add(&self, n: u64) {
        if n == 0 || !enabled() {
            return;
        }
        let buffered = SHARD.with(|slot| {
            if let Some(data) = slot.borrow_mut().as_mut() {
                let entry = data
                    .counters
                    .entry(self.name)
                    .or_insert((Arc::clone(&self.cell), 0));
                entry.1 += n;
                true
            } else {
                false
            }
        });
        if !buffered {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current merged global total (excludes unmerged shard buffers).
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// The counter's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A gauge handle: a signed last-write-wins level (queue depths,
/// connection counts). Gauges write through to the global cell directly
/// — they are *not* sharded, so their value under parallel writers is
/// scheduling-dependent and excluded from the determinism contract.
#[derive(Clone)]
pub struct Gauge {
    name: &'static str,
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge (no-op while recording is disabled).
    pub fn set(&self, value: i64) {
        if enabled() {
            self.cell.store(value, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative; no-op while recording is disabled).
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// The gauge's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A fixed-bucket histogram handle. Bucket bounds are `&'static` and
/// fixed at registration, so bucketing is identical in every process.
#[derive(Clone)]
pub struct Histogram {
    name: &'static str,
    cells: Arc<HistCells>,
}

impl Histogram {
    /// Records one observation (no-op while recording is disabled).
    /// Shard-buffered like [`Counter::add`] when a shard is installed.
    pub fn observe(&self, value: u64) {
        if !enabled() {
            return;
        }
        let buffered = SHARD.with(|slot| {
            if let Some(data) = slot.borrow_mut().as_mut() {
                let entry = data
                    .histograms
                    .entry(self.name)
                    .or_insert_with(|| ShardHist::new(Arc::clone(&self.cells)));
                entry.record(value);
                true
            } else {
                false
            }
        });
        if !buffered {
            self.cells.record(value);
        }
    }

    /// Records a duration in whole microseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// The histogram's registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Returns (registering on first use) the counter called `name`.
pub fn counter(name: &'static str) -> Counter {
    let reg = registry();
    if let Some(cell) = reg.counters.read().expect("obs lock").get(name) {
        return Counter {
            name,
            cell: Arc::clone(cell),
        };
    }
    let mut map = reg.counters.write().expect("obs lock");
    let cell = map
        .entry(name)
        .or_insert_with(|| Arc::new(AtomicU64::new(0)));
    Counter {
        name,
        cell: Arc::clone(cell),
    }
}

/// Returns (registering on first use) the gauge called `name`.
pub fn gauge(name: &'static str) -> Gauge {
    let reg = registry();
    if let Some(cell) = reg.gauges.read().expect("obs lock").get(name) {
        return Gauge {
            name,
            cell: Arc::clone(cell),
        };
    }
    let mut map = reg.gauges.write().expect("obs lock");
    let cell = map
        .entry(name)
        .or_insert_with(|| Arc::new(AtomicI64::new(0)));
    Gauge {
        name,
        cell: Arc::clone(cell),
    }
}

/// Returns (registering on first use) the histogram called `name` with
/// the [`DEFAULT_TIME_BUCKETS_US`] bounds.
pub fn histogram(name: &'static str) -> Histogram {
    histogram_with(name, DEFAULT_TIME_BUCKETS_US)
}

/// Returns (registering on first use) the histogram called `name` with
/// explicit bucket upper bounds. Bounds must be strictly increasing; a
/// histogram keeps the bounds it was *first* registered with, so every
/// call site for one name must agree.
pub fn histogram_with(name: &'static str, bounds: &'static [u64]) -> Histogram {
    debug_assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "histogram bounds must be strictly increasing"
    );
    let reg = registry();
    if let Some(cells) = reg.histograms.read().expect("obs lock").get(name) {
        return Histogram {
            name,
            cells: Arc::clone(cells),
        };
    }
    let mut map = reg.histograms.write().expect("obs lock");
    let cells = map
        .entry(name)
        .or_insert_with(|| Arc::new(HistCells::new(bounds)));
    Histogram {
        name,
        cells: Arc::clone(cells),
    }
}

/// Interns a dynamically-built instrument name, so runtime-composed
/// labels (a fleet's per-site counters) can use the `&'static str`-keyed
/// registry. Each distinct name leaks exactly once, however many times
/// it is interned; the set of names in one process is small and bounded
/// by the configuration (sites × metrics), so the leak is a registration,
/// not a growth path.
fn intern(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    static INTERNED: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = INTERNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("obs intern lock");
    if let Some(existing) = set.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// Returns (registering on first use) the counter `site.<site>.<name>` —
/// one site's deterministic per-segment metric in a multi-site process.
/// Site labels merge shard-order-invariantly for free: every counter
/// lives in the same [`BTreeMap`]-backed registry, keyed by its full
/// name, so [`snapshot`] renders identical output however sites were
/// partitioned across shards.
pub fn site_counter(site: &str, name: &str) -> Counter {
    counter(intern(&format!("site.{site}.{name}")))
}

/// Convenience: `counter(name).add(n)`. Cold paths only — hot paths
/// should cache the [`Counter`] handle.
pub fn counter_add(name: &'static str, n: u64) {
    if enabled() {
        counter(name).add(n);
    }
}

/// Convenience: `counter(name).inc()`.
pub fn counter_inc(name: &'static str) {
    counter_add(name, 1);
}

/// Convenience: `gauge(name).set(value)`.
pub fn gauge_set(name: &'static str, value: i64) {
    if enabled() {
        gauge(name).set(value);
    }
}

/// Convenience: records `value` (microseconds) into the default-bucket
/// histogram `name`.
pub fn observe_us(name: &'static str, value: u64) {
    if enabled() {
        histogram(name).observe(value);
    }
}

/// Convenience: records a [`Duration`] into the default-bucket histogram
/// `name`, in whole microseconds.
pub fn observe_duration(name: &'static str, d: Duration) {
    if enabled() {
        histogram(name).observe_duration(d);
    }
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

/// One structured trace event. Sequence numbers are process-global and
/// monotone; the ring keeps only the most recent [`TRACE_CAPACITY`]
/// events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone process-global sequence number.
    pub seq: u64,
    /// Subsystem that emitted the event (e.g. `"daemon"`, `"cc"`).
    pub target: &'static str,
    /// Human-readable message.
    pub message: String,
}

/// Appends an event to the trace ring (no-op while recording is
/// disabled). The ring reflects real scheduling and is **excluded** from
/// the determinism contract.
pub fn trace(target: &'static str, message: impl Into<String>) {
    if !enabled() {
        return;
    }
    let mut ring = registry().trace.lock().expect("obs lock");
    let seq = ring.next_seq;
    ring.next_seq += 1;
    if ring.events.len() == TRACE_CAPACITY {
        ring.events.pop_front();
    }
    ring.events.push_back(TraceEvent {
        seq,
        target,
        message: message.into(),
    });
}

/// The current trace ring contents, oldest first.
pub fn trace_events() -> Vec<TraceEvent> {
    registry()
        .trace
        .lock()
        .expect("obs lock")
        .events
        .iter()
        .cloned()
        .collect()
}

// ---------------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------------

struct ShardHist {
    cells: Arc<HistCells>,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl ShardHist {
    fn new(cells: Arc<HistCells>) -> Self {
        let buckets = vec![0; cells.buckets.len()];
        Self {
            cells,
            buckets,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn record(&mut self, value: u64) {
        let idx = self.cells.bucket_index(value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }
}

#[derive(Default)]
struct ShardData {
    counters: BTreeMap<&'static str, (Arc<AtomicU64>, u64)>,
    histograms: BTreeMap<&'static str, ShardHist>,
}

thread_local! {
    static SHARD: RefCell<Option<ShardData>> = const { RefCell::new(None) };
}

/// A detached buffer of counter and histogram increments recorded by one
/// worker thread between [`shard_install`] and [`shard_take`]. Merge it
/// into the global registry with [`shard_merge`]; [`crate::pool::par_map`]
/// merges its workers' shards in worker index order.
#[must_use = "a dropped shard silently discards its recorded metrics"]
pub struct Shard(ShardData);

/// Installs a fresh shard on the calling thread: subsequent counter and
/// histogram records are buffered locally instead of hitting the shared
/// atomics. No-op (returns `false`) if a shard is already installed —
/// the existing shard keeps collecting.
pub fn shard_install() -> bool {
    SHARD.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_some() {
            return false;
        }
        *slot = Some(ShardData::default());
        true
    })
}

/// Removes and returns the calling thread's shard (an empty shard if
/// none was installed, so take/merge is always safe to pair).
pub fn shard_take() -> Shard {
    Shard(
        SHARD
            .with(|slot| slot.borrow_mut().take())
            .unwrap_or_default(),
    )
}

/// Folds a shard's buffered totals into the global registry. Additions
/// are commutative, so totals are independent of merge order; callers
/// that promise determinism (the pool) still merge in a fixed order.
pub fn shard_merge(shard: Shard) {
    let Shard(data) = shard;
    for (_, (cell, n)) in data.counters {
        cell.fetch_add(n, Ordering::Relaxed);
    }
    for (_, hist) in data.histograms {
        for (idx, n) in hist.buckets.iter().enumerate() {
            if *n > 0 {
                hist.cells.buckets[idx].fetch_add(*n, Ordering::Relaxed);
            }
        }
        hist.cells.count.fetch_add(hist.count, Ordering::Relaxed);
        hist.cells.sum.fetch_add(hist.sum, Ordering::Relaxed);
        hist.cells.max.fetch_max(hist.max, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive), strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; one entry per bound plus a final
    /// overflow bucket, so `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile estimate from the bucket counts.
    ///
    /// Returns `None` when the histogram is empty. Otherwise `q` is
    /// clamped to `[0, 1]` and the estimate is the upper bound of the
    /// bucket containing the nearest-rank sample — except the overflow
    /// bucket, which reports the recorded [`HistogramSnapshot::max`].
    /// Well-defined for every edge case: a single sample (every `q`
    /// yields its bucket's bound) and all-equal samples (every `q`
    /// yields the same bound) produce no NaN and never panic.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        // Nearest rank: smallest k >= 1 with k >= q * count.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    self.max
                });
            }
        }
        // count > 0 guarantees the loop returned; keep a defensive value.
        Some(self.max)
    }

    /// Mean of observed values (`None` when empty); never NaN.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

/// A deterministic point-in-time dump of every registered instrument:
/// names are sorted, values are merged global totals. Serializes to the
/// same JSON bytes whenever the recorded totals are equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl ObsSnapshot {
    /// Counter total by name (0 when the counter was never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Captures a snapshot of all registered instruments. Unmerged shards
/// (workers still running) are not included; at a quiescent point —
/// after `par_map` returns, after a session completes — the snapshot is
/// the exact deterministic total.
pub fn snapshot() -> ObsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .read()
        .expect("obs lock")
        .iter()
        .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
        .collect();
    let gauges = reg
        .gauges
        .read()
        .expect("obs lock")
        .iter()
        .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
        .collect();
    let histograms = reg
        .histograms
        .read()
        .expect("obs lock")
        .iter()
        .map(|(name, cells)| {
            (
                name.to_string(),
                HistogramSnapshot {
                    bounds: cells.bounds.to_vec(),
                    counts: cells
                        .buckets
                        .iter()
                        .map(|c| c.load(Ordering::Relaxed))
                        .collect(),
                    count: cells.count.load(Ordering::Relaxed),
                    sum: cells.sum.load(Ordering::Relaxed),
                    max: cells.max.load(Ordering::Relaxed),
                },
            )
        })
        .collect();
    ObsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

fn u64_json(v: u64) -> Json {
    Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

fn u64_from(value: &Json, what: &str) -> Result<u64, JsonError> {
    value
        .as_i64()
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| JsonError::shape(format!("{what}: expected a non-negative integer")))
}

impl ToJson for HistogramSnapshot {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "bounds",
                Json::Arr(self.bounds.iter().map(|&b| u64_json(b)).collect()),
            ),
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| u64_json(c)).collect()),
            ),
            ("count", u64_json(self.count)),
            ("sum", u64_json(self.sum)),
            ("max", u64_json(self.max)),
        ])
    }
}

impl FromJson for HistogramSnapshot {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let arr_u64 = |key: &str| -> Result<Vec<u64>, JsonError> {
            value
                .field(key)?
                .as_arr()
                .ok_or_else(|| JsonError::shape(format!("histogram {key}: expected an array")))?
                .iter()
                .map(|v| u64_from(v, key))
                .collect()
        };
        let bounds = arr_u64("bounds")?;
        let counts = arr_u64("counts")?;
        if counts.len() != bounds.len() + 1 {
            return Err(JsonError::shape(
                "histogram: counts must have one entry per bound plus overflow",
            ));
        }
        Ok(Self {
            bounds,
            counts,
            count: u64_from(value.field("count")?, "count")?,
            sum: u64_from(value.field("sum")?, "sum")?,
            max: u64_from(value.field("max")?, "max")?,
        })
    }
}

impl ToJson for ObsSnapshot {
    fn to_json(&self) -> Json {
        // BTreeMap iteration is name-sorted, so the serialized key order
        // — and therefore the byte output — is deterministic.
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), u64_json(v)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Int(v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for ObsSnapshot {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let obj_pairs = |key: &str| -> Result<Vec<(String, Json)>, JsonError> {
            match value.field(key)? {
                Json::Obj(pairs) => Ok(pairs.clone()),
                _ => Err(JsonError::shape(format!(
                    "metrics {key}: expected an object"
                ))),
            }
        };
        let mut counters = BTreeMap::new();
        for (k, v) in obj_pairs("counters")? {
            counters.insert(k, u64_from(&v, "counter")?);
        }
        let mut gauges = BTreeMap::new();
        for (k, v) in obj_pairs("gauges")? {
            let n = v
                .as_i64()
                .ok_or_else(|| JsonError::shape("gauge: expected an integer"))?;
            gauges.insert(k, n);
        }
        let mut histograms = BTreeMap::new();
        for (k, v) in obj_pairs("histograms")? {
            histograms.insert(k, HistogramSnapshot::from_json(&v)?);
        }
        Ok(Self {
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; serialize tests that depend on
    /// exact totals so parallel test threads cannot interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counter_accumulates_and_snapshots() {
        let _g = lock();
        let c = counter("test.obs.counter_basic");
        let before = c.get();
        c.add(3);
        c.inc();
        assert_eq!(c.get(), before + 4);
        let snap = snapshot();
        assert_eq!(snap.counter("test.obs.counter_basic"), before + 4);
        assert_eq!(snap.counter("test.obs.never_registered"), 0);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = lock();
        let was = enabled();
        set_enabled(false);
        let c = counter("test.obs.disabled");
        let before = c.get();
        c.add(10);
        counter_add("test.obs.disabled", 5);
        observe_us("test.obs.disabled_hist", 42);
        trace("test", "dropped");
        assert_eq!(c.get(), before);
        set_enabled(was);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let _g = lock();
        let gauge = super::gauge("test.obs.gauge");
        gauge.set(7);
        gauge.add(-3);
        assert_eq!(gauge.get(), 4);
        gauge.set(0);
    }

    #[test]
    fn histogram_buckets_deterministically() {
        let _g = lock();
        let h = histogram_with("test.obs.hist_buckets", &[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let snap = snapshot();
        let hist = &snap.histograms["test.obs.hist_buckets"];
        // Upper-inclusive bounds: 5 and 10 land in the first bucket.
        assert_eq!(&hist.counts[..], &[2, 2, 0, 1]);
        assert_eq!(hist.count, 5);
        assert_eq!(hist.sum, 5 + 10 + 11 + 100 + 5000);
        assert_eq!(hist.max, 5000);
    }

    #[test]
    fn quantile_zero_samples() {
        let hist = HistogramSnapshot {
            bounds: vec![10, 100],
            counts: vec![0, 0, 0],
            count: 0,
            sum: 0,
            max: 0,
        };
        assert_eq!(hist.quantile(0.5), None);
        assert_eq!(hist.mean(), None);
    }

    #[test]
    fn quantile_single_sample() {
        let hist = HistogramSnapshot {
            bounds: vec![10, 100],
            counts: vec![0, 1, 0],
            count: 1,
            sum: 42,
            max: 42,
        };
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(hist.quantile(q), Some(100), "q={q}");
        }
        assert_eq!(hist.mean(), Some(42.0));
    }

    #[test]
    fn quantile_all_equal_samples() {
        let hist = HistogramSnapshot {
            bounds: vec![10, 100],
            counts: vec![9, 0, 0],
            count: 9,
            sum: 63,
            max: 7,
        };
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(hist.quantile(q), Some(10), "q={q}");
        }
    }

    #[test]
    fn quantile_overflow_bucket_reports_max() {
        let hist = HistogramSnapshot {
            bounds: vec![10],
            counts: vec![1, 3],
            count: 4,
            sum: 3010,
            max: 2_000,
        };
        assert_eq!(hist.quantile(1.0), Some(2_000));
        assert_eq!(hist.quantile(0.0), Some(10));
        // NaN quantile is clamped, not propagated.
        assert_eq!(hist.quantile(f64::NAN), Some(10));
    }

    #[test]
    fn shard_buffers_then_merges_exact_totals() {
        let _g = lock();
        let c = counter("test.obs.shard_counter");
        let h = histogram_with("test.obs.shard_hist", &[100, 1000]);
        let c0 = c.get();
        assert!(shard_install());
        // A second install is a no-op and must not lose the first shard.
        assert!(!shard_install());
        c.add(5);
        h.observe(50);
        h.observe(500);
        // Buffered: not yet visible globally.
        assert_eq!(c.get(), c0);
        shard_merge(shard_take());
        assert_eq!(c.get(), c0 + 5);
        let snap = snapshot();
        let hist = &snap.histograms["test.obs.shard_hist"];
        assert!(hist.count >= 2);
        // After take, recording goes straight to the atomics again.
        c.inc();
        assert_eq!(c.get(), c0 + 6);
    }

    #[test]
    fn shard_take_without_install_is_empty() {
        let shard = shard_take();
        shard_merge(shard); // merging an empty shard is a no-op
    }

    #[test]
    fn trace_ring_is_bounded_with_monotone_seq() {
        let _g = lock();
        reset();
        for i in 0..(TRACE_CAPACITY + 10) {
            trace("test", format!("event {i}"));
        }
        let events = trace_events();
        assert_eq!(events.len(), TRACE_CAPACITY);
        assert_eq!(events.first().unwrap().seq, 10);
        assert_eq!(events.last().unwrap().seq, (TRACE_CAPACITY + 10 - 1) as u64);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let _g = lock();
        let c = counter("test.obs.reset");
        c.add(9);
        reset();
        assert_eq!(c.get(), 0);
        let snap = snapshot();
        assert!(snap.counters.contains_key("test.obs.reset"));
        assert_eq!(snap.counter("test.obs.reset"), 0);
    }

    #[test]
    fn snapshot_json_round_trips_and_is_deterministic() {
        let mut snap = ObsSnapshot::default();
        snap.counters.insert("b.two".into(), 2);
        snap.counters.insert("a.one".into(), 1);
        snap.gauges.insert("g.depth".into(), -4);
        snap.histograms.insert(
            "h.lat".into(),
            HistogramSnapshot {
                bounds: vec![10, 100],
                counts: vec![1, 2, 3],
                count: 6,
                sum: 700,
                max: 650,
            },
        );
        let json = snap.to_json();
        let text = json.to_compact();
        // Sorted keys: "a.one" serializes before "b.two".
        assert!(text.find("a.one").unwrap() < text.find("b.two").unwrap());
        let back = ObsSnapshot::from_json(&crate::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json().to_compact(), text);
    }

    #[test]
    fn snapshot_rejects_malformed_histograms() {
        let bad = Json::parse(
            r#"{"counters":{},"gauges":{},"histograms":{"h":{"bounds":[10],"counts":[1],"count":1,"sum":1,"max":1}}}"#,
        )
        .unwrap();
        assert!(ObsSnapshot::from_json(&bad).is_err());
        let neg = Json::parse(r#"{"counters":{"c":-1},"gauges":{},"histograms":{}}"#).unwrap();
        assert!(ObsSnapshot::from_json(&neg).is_err());
    }
}
