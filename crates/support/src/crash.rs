//! Deterministic crash-point injection: seeded, named process-abort
//! hooks for chaos testing.
//!
//! A crash-safe daemon can only be *proven* crash-safe by killing it at
//! the worst possible moments — mid-snapshot-write, between completing an
//! epoch and persisting it, halfway through a wire frame — and checking
//! that a restart converges to the byte-identical result. This module
//! provides the hooks: code under test declares named crash points with
//! [`crash_point!`], and a supervisor process arms a [`CrashPlan`]
//! through the [`CRASH_ENV`] environment variable before spawning the
//! victim. When the scheduled hit of an armed point executes, the process
//! [`std::process::abort`]s — no destructors, no flushes, exactly the
//! torn state a power cut would leave.
//!
//! # Determinism contract
//!
//! Mirroring [`wolt_testbed::faults`]: every trigger is keyed by the
//! crash point's *name*, with an independent per-name hit counter, so
//! executions of unrelated points never shift when a trigger fires.
//! [`CrashPlan::seeded`] derives each point's scheduled hit as a pure
//! function of `(seed, point name)` — reordering the catalogue or adding
//! new points leaves existing points' schedules untouched. A process with
//! no plan in its environment pays one atomic load per crash point.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::rng::{RngCore, SplitMix64};

/// Environment variable carrying the armed plan into a victim process.
pub const CRASH_ENV: &str = "WOLT_CRASH";

/// A schedule of process aborts: for each named crash point, the 1-based
/// execution count at which the process must die.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CrashPlan {
    /// `(point name, 1-based hit index)` pairs, at most one per name.
    pub points: Vec<(String, u64)>,
}

impl CrashPlan {
    /// The empty plan: no point ever fires.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan schedules no aborts at all.
    pub fn is_none(&self) -> bool {
        self.points.is_empty()
    }

    /// A plan that aborts on the `hit`-th execution of one point.
    ///
    /// # Panics
    ///
    /// Panics when `hit` is zero (hit indices are 1-based).
    pub fn single(name: &str, hit: u64) -> Self {
        assert!(hit >= 1, "crash-point hit indices are 1-based");
        Self {
            points: vec![(name.to_string(), hit)],
        }
    }

    /// Derives one scheduled hit per catalogue entry: point `name` with
    /// at most `max_hits` expected executions gets a hit index in
    /// `[1, max_hits]` that depends only on `(seed, name)` — never on
    /// the other catalogue entries or their order. Entries with
    /// `max_hits == 0` are skipped (the point cannot execute this run).
    pub fn seeded(seed: u64, catalogue: &[(&str, u64)]) -> Self {
        let points = catalogue
            .iter()
            .filter(|(_, max_hits)| *max_hits > 0)
            .map(|&(name, max_hits)| {
                let hit = 1 + mix_name(seed, name) % max_hits;
                (name.to_string(), hit)
            })
            .collect();
        Self { points }
    }

    /// The scheduled hit index for `name`, if armed.
    pub fn trigger(&self, name: &str) -> Option<u64> {
        self.points
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, hit)| hit)
    }

    /// Serializes the plan for [`CRASH_ENV`]: `name@hit,name@hit,…`.
    pub fn to_env(&self) -> String {
        self.points
            .iter()
            .map(|(name, hit)| format!("{name}@{hit}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses a [`CRASH_ENV`] value. The empty string is the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry (missing `@`,
    /// unparseable or zero hit index, duplicate point name).
    pub fn from_env(value: &str) -> Result<Self, String> {
        let mut points: Vec<(String, u64)> = Vec::new();
        for entry in value.split(',').filter(|e| !e.is_empty()) {
            let (name, hit) = entry
                .rsplit_once('@')
                .ok_or_else(|| format!("crash plan entry {entry:?} is not name@hit"))?;
            let hit: u64 = hit
                .parse()
                .map_err(|_| format!("crash plan entry {entry:?} has a non-numeric hit"))?;
            if hit == 0 {
                return Err(format!("crash plan entry {entry:?}: hits are 1-based"));
            }
            if name.is_empty() {
                return Err(format!("crash plan entry {entry:?} has an empty name"));
            }
            if points.iter().any(|(n, _)| n == name) {
                return Err(format!("crash plan names point {name:?} twice"));
            }
            points.push((name.to_string(), hit));
        }
        Ok(Self { points })
    }
}

/// Hashes `(seed, name)` into the per-point schedule draw by chaining
/// SplitMix64 over the name bytes, so each point's draw is independent
/// of every other point.
fn mix_name(seed: u64, name: &str) -> u64 {
    let mut h = SplitMix64::new(seed ^ 0x574F_4C54_5F63_7273).next_u64(); // "WOLT_crs"
    for &b in name.as_bytes() {
        h = SplitMix64::new(h ^ u64::from(b)).next_u64();
    }
    h
}

/// The process-wide armed plan plus its per-point execution counters.
struct Armed {
    triggers: BTreeMap<String, u64>,
    counters: Mutex<BTreeMap<String, u64>>,
}

fn armed() -> Option<&'static Armed> {
    static ARMED: OnceLock<Option<Armed>> = OnceLock::new();
    ARMED
        .get_or_init(|| {
            let value = std::env::var(CRASH_ENV).ok()?;
            let plan =
                CrashPlan::from_env(&value).unwrap_or_else(|e| panic!("invalid {CRASH_ENV}: {e}"));
            if plan.is_none() {
                return None;
            }
            Some(Armed {
                triggers: plan.points.into_iter().collect(),
                counters: Mutex::new(BTreeMap::new()),
            })
        })
        .as_ref()
}

/// Executes one named crash point: a no-op unless [`CRASH_ENV`] armed a
/// plan naming this point, in which case the scheduled hit aborts the
/// process (SIGABRT — no destructors run, no buffers flush).
///
/// Call through [`crash_point!`] so the call sites read as annotations.
pub fn hit(name: &str) {
    let Some(armed) = armed() else { return };
    let Some(&trigger) = armed.triggers.get(name) else {
        return;
    };
    let count = {
        let mut counters = armed.counters.lock().unwrap_or_else(|e| e.into_inner());
        let count = counters.entry(name.to_string()).or_insert(0);
        *count += 1;
        *count
    };
    if count == trigger {
        // The one observable trace a post-mortem gets: say who fired.
        eprintln!("crash_point {name:?} firing on hit {count}: aborting");
        std::process::abort();
    }
}

/// Declares one named crash point (see [`hit`]). Near-zero cost when no
/// plan is armed; aborts the process at the scheduled hit when one is.
#[macro_export]
macro_rules! crash_point {
    ($name:expr) => {
        $crate::crash::hit($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_round_trips() {
        let plan = CrashPlan {
            points: vec![
                ("daemon.snapshot.mid_write".into(), 3),
                ("codec.write.mid_frame".into(), 17),
            ],
        };
        let env = plan.to_env();
        assert_eq!(env, "daemon.snapshot.mid_write@3,codec.write.mid_frame@17");
        assert_eq!(CrashPlan::from_env(&env).unwrap(), plan);
        assert_eq!(CrashPlan::from_env("").unwrap(), CrashPlan::none());
    }

    #[test]
    fn malformed_env_entries_are_rejected() {
        for bad in [
            "no-hit-index",
            "point@",
            "point@zero",
            "point@0",
            "@3",
            "p@1,p@2",
        ] {
            assert!(CrashPlan::from_env(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn seeded_schedule_is_keyed_by_name_alone() {
        let catalogue = [
            ("daemon.snapshot.mid_write", 7u64),
            ("daemon.epoch.pre_snapshot", 7),
            ("codec.write.mid_frame", 40),
        ];
        let plan = CrashPlan::seeded(9, &catalogue);
        // Reordering and extending the catalogue never shifts an
        // existing point's schedule.
        let reordered = CrashPlan::seeded(
            9,
            &[
                ("codec.write.mid_frame", 40),
                ("brand.new.point", 3),
                ("daemon.snapshot.mid_write", 7),
                ("daemon.epoch.pre_snapshot", 7),
            ],
        );
        for (name, _) in &catalogue {
            assert_eq!(plan.trigger(name), reordered.trigger(name), "{name}");
        }
        // Bounds hold and hits are 1-based.
        for (name, max) in &catalogue {
            let hit = plan.trigger(name).unwrap();
            assert!((1..=*max).contains(&hit), "{name} scheduled at {hit}");
        }
        // Different seeds reach different schedules for at least one
        // point (overwhelmingly likely with a 40-wide range).
        let other = CrashPlan::seeded(10, &catalogue);
        assert_ne!(
            catalogue
                .iter()
                .map(|(n, _)| plan.trigger(n))
                .collect::<Vec<_>>(),
            catalogue
                .iter()
                .map(|(n, _)| other.trigger(n))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn zero_max_hits_points_are_skipped() {
        let plan = CrashPlan::seeded(1, &[("never.runs", 0), ("runs", 5)]);
        assert_eq!(plan.trigger("never.runs"), None);
        assert!(plan.trigger("runs").is_some());
    }

    #[test]
    fn unarmed_hits_are_no_ops() {
        // No WOLT_CRASH in the test environment: a hot loop over the
        // macro must be a no-op (and certainly must not abort the test
        // runner).
        for _ in 0..10_000 {
            crate::crash_point!("daemon.snapshot.mid_write");
        }
    }
}
