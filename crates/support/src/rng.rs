//! Deterministic, seedable random numbers with documented stream semantics.
//!
//! Every stochastic component of the WOLT reproduction (scenario sampling,
//! shadowing noise, MAC backoff, churn) draws from [`ChaCha8Rng`], seeded
//! explicitly. The stream is fully specified here so experiment seeds in
//! `EXPERIMENTS.md` stay meaningful across toolchains and platforms:
//!
//! * [`ChaCha8Rng::seed_from_u64`] expands the 64-bit seed into a 32-byte
//!   key with [`SplitMix64`] (four consecutive outputs, little-endian).
//! * The keystream is the ChaCha block function with 8 rounds, a 64-bit
//!   block counter starting at 0, and an all-zero nonce. Each 64-byte
//!   block is consumed as sixteen little-endian `u32` words in order;
//!   [`RngCore::next_u64`] takes two consecutive words (low word first).
//! * [`Rng::gen_range`] maps the raw stream to a range with Lemire
//!   rejection sampling for integers (unbiased) and with
//!   `lo + u · (hi − lo)` for floats, where `u` is the top 53 bits of one
//!   `next_u64` scaled into `[0, 1)`.
//!
//! Consuming the *same* draws in the *same* order with the same seed is
//! what makes `wolt generate --seed S` byte-identical across runs; see
//! `docs/PAPER_MAPPING.md`.

use std::ops::{Range, RangeInclusive};

/// The raw source of randomness: an infinite deterministic `u64` stream.
pub trait RngCore {
    /// Next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
///
/// Mirrors the subset of the `rand 0.8` surface the workspace uses, so the
/// simulators read naturally (`rng.gen_range(0.0..1.0)`).
pub trait Rng: RngCore {
    /// Uniform value in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53: the standard dyadic-rational map.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `range`. Accepts `lo..hi` and `lo..=hi` for the
    /// float and integer types implementing [`SampleUniform`].
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = uniform_u64(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` on an empty slice.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[uniform_u64(self, slice.len() as u64) as usize])
        }
    }

    /// `amount` distinct indices from `0..len`, in selection order
    /// (a partial Fisher–Yates over the index set).
    fn sample_indices(&mut self, len: usize, amount: usize) -> Vec<usize> {
        assert!(amount <= len, "cannot sample {amount} of {len}");
        let mut pool: Vec<usize> = (0..len).collect();
        let mut picked = Vec::with_capacity(amount);
        for k in 0..amount {
            let j = k + uniform_u64(self, (len - k) as u64) as usize;
            pool.swap(k, j);
            picked.push(pool[k]);
        }
        picked
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a full 32-byte key.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Builds the generator from a `u64` by SplitMix64 key expansion:
    /// the key is four consecutive [`SplitMix64`] outputs, little-endian.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&sm.next_u64().to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: the tiny seed-expansion PRNG (Steele, Lea & Flood 2014).
///
/// Used to derive ChaCha keys from `u64` seeds and to derive per-case
/// seeds in the [`crate::check`] harness. Not used for simulation draws.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator with the given initial state.
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// ChaCha stream cipher with 8 rounds, used as a deterministic PRNG.
///
/// 8 rounds is the speed-oriented variant (Aumasson et al., "New features
/// of Latin dances"); statistical quality is far beyond what the
/// simulations need, and the keystream is platform-independent.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state words (the input block minus constants).
    key: [u32; 8],
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next word to hand out from `block`; 16 = exhausted.
    word_idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] is the all-zero nonce.
        let mut working = state;
        for _ in 0..4 {
            // A double round: four column rounds then four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word_idx = 0;
    }

    fn next_u32(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let w = self.block[self.word_idx];
        self.word_idx += 1;
        w
    }
}

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            word_idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// Unbiased uniform draw from `0..n` (Lemire's multiply-and-reject).
///
/// # Panics
///
/// Panics if `n == 0`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "uniform_u64 needs a non-empty range");
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (n as u128);
    let mut low = m as u64;
    if low < n {
        let threshold = n.wrapping_neg() % n;
        while low < threshold {
            x = rng.next_u64();
            m = (x as u128) * (n as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform draw from the half-open range `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from the closed range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty f64 range {lo}..{hi}");
        let u = rng.gen_f64();
        // The affine map can round up to `hi` when hi - lo overflows the
        // mantissa; nudge back inside to keep the half-open contract.
        let v = lo + u * (hi - lo);
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty f64 range {lo}..={hi}");
        lo + rng.gen_f64() * (hi - lo)
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty integer range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty integer range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit domain.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
                }
            }
        }
    )*};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn stream_is_pinned() {
        // Golden values freeze the stream definition: SplitMix64 key
        // expansion + ChaCha8 + little-endian word pairing. If this test
        // breaks, every experiment seed in EXPERIMENTS.md changes meaning.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = ChaCha8Rng::seed_from_u64(0);
        let repeat: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, repeat);
        // SplitMix64 has published reference outputs for state 0.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn float_range_bounds_hold() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
            let w = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
        let tiny = rng.gen_range(f64::MIN_POSITIVE..1.0);
        assert!((f64::MIN_POSITIVE..1.0).contains(&tiny));
    }

    #[test]
    fn integer_range_bounds_hold_and_cover() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..6);
            seen[v] = true;
            let w: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all of 0..6 should appear");
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate} far from 0.25");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "50! leaves identity essentially impossible"
        );
    }

    #[test]
    fn choose_and_sample_indices() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let xs = [10, 20, 30];
        for _ in 0..100 {
            assert!(xs.contains(rng.choose(&xs).unwrap()));
        }
        let picked = rng.sample_indices(10, 4);
        assert_eq!(picked.len(), 4);
        let mut unique = picked.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);
        assert!(picked.iter().all(|&i| i < 10));
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
        let mut by_ref = &mut rng;
        let w = draw(&mut by_ref);
        assert!((0.0..1.0).contains(&w));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_range_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _: usize = rng.gen_range(3..3);
    }
}
