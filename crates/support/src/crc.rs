//! CRC-32 (IEEE 802.3, the `zlib`/`gzip` polynomial) over byte slices.
//!
//! The daemon's generational snapshot store appends a checksum trailer to
//! every snapshot file so a torn or bit-flipped write is *detected* at
//! load time instead of being parsed into silently-wrong controller
//! state. CRC-32 is the right strength for that job: it is not a
//! cryptographic integrity check (nothing on the snapshot path is
//! adversarial), it is a torn-write and bit-rot detector with a
//! well-known reference implementation to validate against.
//!
//! The implementation is the classic reflected table-driven form: one
//! 256-entry table computed at first use, one table lookup per byte.

use std::sync::OnceLock;

/// The reversed IEEE 802.3 polynomial (0x04C11DB7 bit-reflected).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// A streaming CRC-32 computation.
///
/// ```
/// use wolt_support::crc::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh computation (initial state all-ones, per the standard).
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feeds more bytes into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ table[idx];
        }
    }

    /// The final checksum (state inverted, per the standard).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_check_values() {
        // The canonical CRC-32 check value, plus a few vectors computed
        // with zlib's crc32().
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"generational snapshot payload";
        let mut crc = Crc32::new();
        crc.update(&data[..7]);
        crc.update(&data[7..]);
        assert_eq!(crc.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"snapshot.3.json payload bytes".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    reference,
                    "flip of byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn prefix_truncation_changes_the_checksum() {
        let base = b"a torn write leaves a strict prefix behind".to_vec();
        let reference = crc32(&base);
        for len in 0..base.len() {
            assert_ne!(crc32(&base[..len]), reference, "prefix of {len} collided");
        }
    }
}
