//! A small scoped thread pool with an order-preserving `par_map`, plus a
//! long-lived [`TaskPool`] for daemon-style blocking tasks.
//!
//! The workspace is hermetic — no rayon, no crossbeam — so this module
//! provides the parallel primitives the optimizers, experiment drivers,
//! and the network daemon need: map a function over a slice on `n` worker
//! threads and get the results back **in input order**, so parallel runs
//! are byte-for-byte identical to sequential ones. Workers pull indices from a shared atomic
//! counter (dynamic load balancing); each worker collects `(index, result)`
//! pairs privately and the results are stitched back into input order at
//! the end, which keeps the whole module free of `unsafe`.
//!
//! # Determinism contract
//!
//! For a pure `f`, `par_map(threads, items, f)` returns exactly
//! `items.iter().map(f).collect()` for every `threads >= 1`. Only the
//! wall-clock schedule varies with the thread count — never the output.
//! Tests in this module and the workspace CLI byte-determinism suite
//! enforce this.
//!
//! The contract extends to observability: each `par_map` worker records
//! [`crate::obs`] counters and histograms into a private shard, and the
//! shards are merged back into the global registry **in worker index
//! order** after all workers have joined, so metric totals are identical
//! at any thread count.
//!
//! # Example
//!
//! ```
//! use wolt_support::pool::par_map;
//!
//! let squares = par_map(4, &[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Environment variable consulted by [`resolve_threads`] when no explicit
/// thread count is given (the CLI's `--threads` flag overrides it).
pub const THREADS_ENV: &str = "WOLT_THREADS";

/// Resolves a worker-thread count from, in priority order: an explicit
/// request (e.g. a `--threads` CLI flag), the `WOLT_THREADS` environment
/// variable, and finally the machine's available parallelism. The result
/// is always at least 1; unparseable or zero values fall through to the
/// next source.
///
/// # Example
///
/// ```
/// use wolt_support::pool::resolve_threads;
///
/// assert_eq!(resolve_threads(Some(3)), 3);
/// assert!(resolve_threads(None) >= 1);
/// ```
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        if n >= 1 {
            return n;
        }
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning results in input order.
///
/// `f` receives `(index, &item)` so callers can key work off the input
/// position without threading it through the item type. With `threads <= 1`
/// (or a single item) the map runs inline on the calling thread — no
/// spawn overhead, identical results.
///
/// Work is distributed dynamically: workers claim the next unclaimed index
/// from an atomic counter, so a few slow items cannot stall a static
/// chunk. Results are reassembled into input order before returning, which
/// is what makes the output independent of scheduling.
///
/// # Panics
///
/// If `f` panics on any item the panic is propagated to the caller once
/// all workers have stopped (the scope joins every thread).
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let joined: Vec<(Vec<(usize, R)>, crate::obs::Shard)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Buffer this worker's metric records in a private
                    // shard; the caller merges all shards in worker
                    // index order so totals are thread-count invariant.
                    crate::obs::shard_install();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    (out, crate::obs::shard_take())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(joined.len());
    for (bucket, shard) in joined {
        // Merge in worker index order (the join order above).
        crate::obs::shard_merge(shard);
        buckets.push(bucket);
    }
    // Stitch the per-worker buckets back into input order.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for bucket in &mut buckets {
        for (i, r) in bucket.drain(..) {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index is claimed exactly once"))
        .collect()
}

/// Parallel fold: maps `f` over `items` with [`par_map`], then folds the
/// results **in input order** with `combine`. Because the fold order is
/// fixed, the result is identical at any thread count even for
/// non-associative float reductions.
pub fn par_map_reduce<T, R, A, F, G>(threads: usize, items: &[T], init: A, f: F, combine: G) -> A
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    par_map(threads, items, f).into_iter().fold(init, combine)
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads executing submitted
/// closures, for workloads that are *not* a finite `par_map` — e.g. a
/// network daemon handling one blocking connection per task.
///
/// Jobs are claimed from a shared queue in submission order, but may run
/// (and block) concurrently, so a task is allowed to live for the whole
/// life of a connection. Dropping the pool closes the queue and joins
/// every worker after in-flight jobs finish.
///
/// Unlike [`par_map`] there is no determinism contract here: tasks
/// communicate through their own channels, and anything that must be
/// reproducible should be serialized by the consumer of those channels.
pub struct TaskPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl TaskPool {
    /// Spawns `workers` worker threads (at least one).
    pub fn new(workers: usize) -> Self {
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..workers.max(1))
            .map(|_| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::spawn(move || loop {
                    // Hold the lock only while claiming, never while
                    // running: a blocking job must not starve the queue.
                    let job = match receiver.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => return,
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => return,
                    }
                })
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job. Returns `false` if the pool is shutting down (the
    /// job was not queued).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.sender {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        // Closing the channel lets each worker drain the queue and exit.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            // A panicked job already printed its message; don't double-panic
            // the pool's owner during unwinding.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_sequentially() {
        let out = par_map(1, &[10, 20, 30], |i, &x| (i, x + 1));
        assert_eq!(out, vec![(0, 11), (1, 21), (2, 31)]);
    }

    #[test]
    fn maps_in_order_in_parallel() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = par_map(1, &items, |_, &x| x * 3 + 1);
        for threads in [2, 4, 8] {
            let par = par_map(threads, &items, |_, &x| x * 3 + 1);
            assert_eq!(par, seq, "thread count {threads} changed the output");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = par_map(4, &[], |_, x: &i32| *x);
        assert!(empty.is_empty());
        assert_eq!(par_map(4, &[7], |_, &x| x), vec![7]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map(64, &[1, 2, 3], |_, &x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d"];
        let out = par_map(2, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn reduce_is_thread_count_invariant() {
        // A float sum whose result depends on fold order: identical at any
        // thread count because the fold happens in input order.
        let items: Vec<f64> = (1..200).map(|i| 1.0 / i as f64).collect();
        let seq = par_map_reduce(1, &items, 0.0f64, |_, &x| x.sin(), |a, r| a + r);
        for threads in [2, 3, 8] {
            let par = par_map_reduce(threads, &items, 0.0f64, |_, &x| x.sin(), |a, r| a + r);
            assert_eq!(par.to_bits(), seq.to_bits(), "bitwise float divergence");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            par_map(2, &[1, 2, 3, 4], |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn task_pool_runs_all_jobs() {
        let pool = TaskPool::new(4);
        assert_eq!(pool.workers(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        drop(pool); // joins workers after the queue drains
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn task_pool_supports_long_lived_blocking_tasks() {
        // Two tasks that must run concurrently to finish: a pool that ran
        // them sequentially would deadlock on the rendezvous.
        let pool = TaskPool::new(2);
        let (atx, arx) = channel::<u32>();
        let (btx, brx) = channel::<u32>();
        pool.execute(move || {
            btx.send(1).unwrap();
            assert_eq!(arx.recv().unwrap(), 2);
        });
        pool.execute(move || {
            atx.send(2).unwrap();
            assert_eq!(brx.recv().unwrap(), 1);
        });
        drop(pool);
    }

    #[test]
    fn task_pool_zero_workers_clamps_to_one() {
        let pool = TaskPool::new(0);
        assert_eq!(pool.workers(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn resolve_threads_priority() {
        assert_eq!(resolve_threads(Some(5)), 5);
        // Zero is not a valid explicit count; falls through to env/machine.
        assert!(resolve_threads(Some(0)) >= 1);
        assert!(resolve_threads(None) >= 1);
    }
}
