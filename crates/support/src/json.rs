//! Minimal JSON: a value type, a strict parser, and deterministic writers.
//!
//! Covers exactly what the workspace exchanges — the `NetworkSpec` /
//! `SolveReport` shapes of `wolt-cli`, experiment traces, and the
//! quantity newtypes — with two properties the external `serde_json`
//! stack could not guarantee offline:
//!
//! * **Determinism**: objects keep insertion order, floats print with the
//!   shortest round-trip representation, and there is no configuration,
//!   so equal values always serialize to identical bytes.
//! * **Zero dependencies**: builds with no registry access.
//!
//! Types opt in by implementing [`ToJson`] / [`FromJson`] explicitly;
//! there is deliberately no derive magic, so every serialized field is
//! visible in the source.

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order (`Vec` of pairs, not a map): the
/// serialized form of a value is a pure function of construction order,
/// which is what makes same-seed CLI reports byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A JSON number written without a decimal point or exponent.
    ///
    /// Kept distinct from [`Json::Num`] so integer fields (counts,
    /// indices) serialize as `42`, not `42.0`.
    Int(i64),
    /// A JSON number with a fractional part (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Error from parsing or shape-checking JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the problem was detected (0 for
    /// shape errors raised after parsing).
    pub offset: usize,
}

impl JsonError {
    /// Shape error (wrong type / missing field) with no input position.
    pub fn shape(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset > 0 {
            write!(f, "{} at byte {}", self.message, self.offset)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for JsonError {}

/// Serialize into a [`Json`] value.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

/// Deserialize from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, or explains which shape constraint failed.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the missing field or wrong type.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Compact serialization (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization: two-space indent, one key per line.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Num(n) => out.push_str(&format_f64(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Object field by key, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field by key, as a shape error when absent.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when `self` is not an object or lacks `key`.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::shape(format!("missing field {key:?}")))
    }

    /// The number value, if this is a number (integer or float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The integer value, if this is a number without a fractional part.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(*n as i64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Builds an object from key/value pairs (insertion order preserved).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Shortest round-trip float formatting; integral values keep a `.0`
/// suffix so the type is evident (`42.0`, not `42`). Non-finite values
/// have no JSON representation and serialize as `null`.
fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    // Rust's Debug for f64 is the shortest representation that parses
    // back exactly, and always includes a decimal point or exponent.
    format!("{v:?}")
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos.max(1),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        let v = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        };
        self.depth -= 1;
        v
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 leaves pos after the digits; compensate
                            // for the increment below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8:
                    // it came from &str).
                    let rest = &self.bytes[self.pos..];
                    let step = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let s = std::str::from_utf8(&rest[..step])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += step;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a single 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        // A number written without '.' or an exponent is an integer when it
        // fits; larger literals degrade to f64 like every JSON parser.
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

// ---------------------------------------------------------------------------
// ToJson / FromJson for primitives and containers.
// ---------------------------------------------------------------------------

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_f64()
            .ok_or_else(|| JsonError::shape("expected a number"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::shape("expected a boolean"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::shape("expected a string"))
    }
}

macro_rules! json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                match i64::try_from(*self) {
                    Ok(n) => Json::Int(n),
                    // u64 values above i64::MAX degrade to f64.
                    Err(_) => Json::Num(*self as f64),
                }
            }
        }

        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                let n = value.as_i64().ok_or_else(|| match value.as_f64() {
                    Some(f) => JsonError::shape(format!("expected an integer, got {f}")),
                    None => JsonError::shape("expected a number"),
                })?;
                <$t>::try_from(n).map_err(|_| {
                    JsonError::shape(format!(
                        "integer {n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json(value).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_arr()
            .ok_or_else(|| JsonError::shape("expected an array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::shape("expected a two-element array")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("42.0").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            Json::parse(r#"{"capacities": [60.0, 20.0], "rates": [[15.0, 10.0], [40.0, 20.0]]}"#)
                .unwrap();
        let caps: Vec<f64> = Vec::from_json(v.field("capacities").unwrap()).unwrap();
        assert_eq!(caps, vec![60.0, 20.0]);
        let rates: Vec<Vec<f64>> = Vec::from_json(v.field("rates").unwrap()).unwrap();
        assert_eq!(rates[1], vec![40.0, 20.0]);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "1.2.3",
            "00",
            "1e",
            "\"unterminated",
            "{\"a\":1} extra",
            "[1 2]",
            "\"bad \\x escape\"",
            "+1",
            ".5",
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\ttab \"quoted\" back\\slash \u{08}\u{0C} unicode: ☂";
        let json = Json::Str(original.to_string()).to_compact();
        assert_eq!(Json::parse(&json).unwrap(), Json::Str(original.to_string()));
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap(), Json::Str("Aé😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(Json::Num(42.0).to_compact(), "42.0");
        assert_eq!(Json::Num(0.1).to_compact(), "0.1");
        assert_eq!(Json::Num(-3.25).to_compact(), "-3.25");
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for v in [
            0.0,
            1.0,
            -1.0,
            0.1,
            1e-300,
            1e300,
            std::f64::consts::PI,
            177.19761470204833,
            f64::MIN_POSITIVE,
        ] {
            let text = Json::Num(v).to_compact();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(v), "{v}");
        }
    }

    #[test]
    fn pretty_format_is_stable() {
        let v = Json::obj([
            ("name", Json::Str("fig3".into())),
            ("values", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.to_pretty(),
            "{\n  \"name\": \"fig3\",\n  \"values\": [\n    1.0,\n    2.5\n  ],\n  \"empty\": []\n}"
        );
        assert_eq!(
            v.to_compact(),
            r#"{"name":"fig3","values":[1.0,2.5],"empty":[]}"#
        );
    }

    #[test]
    fn object_preserves_insertion_order() {
        let v = Json::obj([("zebra", Json::Num(1.0)), ("alpha", Json::Num(2.0))]);
        assert_eq!(v.to_compact(), r#"{"zebra":1.0,"alpha":2.0}"#);
        let reparsed = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(reparsed.to_compact(), v.to_compact());
    }

    #[test]
    fn container_traits_round_trip() {
        let pairs: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), 2)];
        let back: Vec<(String, u64)> = Vec::from_json(&pairs.to_json()).unwrap();
        assert_eq!(back, pairs);

        let opt: Option<f64> = Some(2.5);
        assert_eq!(Option::<f64>::from_json(&opt.to_json()).unwrap(), Some(2.5));
        assert_eq!(Option::<f64>::from_json(&Json::Null).unwrap(), None);
    }

    #[test]
    fn integer_shape_checks() {
        assert_eq!(u64::from_json(&Json::Num(7.0)).unwrap(), 7);
        assert_eq!(u64::from_json(&Json::Int(7)).unwrap(), 7);
        assert!(u64::from_json(&Json::Num(7.5)).is_err());
        assert!(u64::from_json(&Json::Int(-1)).is_err());
        assert!(u8::from_json(&Json::Num(300.0)).is_err());
        assert!(usize::from_json(&Json::Str("7".into())).is_err());
        assert!(i64::from_json(&Json::Num(-3.0)).is_ok());
    }

    #[test]
    fn integers_serialize_without_decimal_point() {
        assert_eq!(7usize.to_json().to_compact(), "7");
        assert_eq!((-3i64).to_json().to_compact(), "-3");
        assert_eq!(vec![2usize, 0, 1].to_json().to_compact(), "[2,0,1]");
        // And round trip through the parser as integers.
        let back: Vec<usize> = Vec::from_json(&Json::parse("[2,0,1]").unwrap()).unwrap();
        assert_eq!(back, vec![2, 0, 1]);
        // Integer-valued floats still keep their decimal point.
        assert_eq!(42.0f64.to_json().to_compact(), "42.0");
    }

    #[test]
    fn field_errors_name_the_key() {
        let v = Json::parse(r#"{"a": 1}"#).unwrap();
        let err = v.field("missing").unwrap_err();
        assert!(err.message.contains("missing"));
        assert!(err.to_string().contains("\"missing\""));
    }

    #[test]
    fn error_offsets_point_into_input() {
        let err = Json::parse("[1, 2, oops]").unwrap_err();
        assert!(
            err.offset >= 7,
            "offset {} should reach the bad token",
            err.offset
        );
        assert!(err.to_string().contains("byte"));
    }
}
