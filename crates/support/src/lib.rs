//! Zero-dependency substrate for the WOLT workspace.
//!
//! A reproduction of WOLT (ICDCS 2020) is only credible if its association
//! results are bit-for-bit reproducible from a seed, which requires owning
//! the random-number and serialization stack instead of importing it. This
//! crate provides the three pieces every other workspace crate builds on,
//! with no external dependencies and therefore no network access at build
//! time:
//!
//! * [`rng`] — a seedable, deterministic ChaCha8 PRNG with documented
//!   stream semantics and the `gen_range`/`gen_bool`/`shuffle` surface the
//!   simulators need.
//! * [`json`] — a minimal JSON value type, parser, and writer, plus
//!   [`json::ToJson`]/[`json::FromJson`] traits for the report and spec
//!   shapes exchanged by `wolt-cli` and the bench binaries.
//! * [`check`] — a mini property-testing harness with bounded shrinking
//!   and a regression-seed corpus file format.
//! * [`pool`] — a scoped thread pool with an order-preserving `par_map`,
//!   so parallel experiment sweeps stay byte-identical to sequential runs.
//! * [`obs`] — a process-wide metrics registry (counters, gauges,
//!   fixed-bucket histograms, trace ring) whose totals are deterministic
//!   at any thread count and whose presence never perturbs results.
//! * [`crc`] — CRC-32 (IEEE) for torn-write detection in durable state.
//! * [`crash`] — seeded, named crash-point injection ([`crash_point!`])
//!   for chaos-testing crash safety with real process aborts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod crash;
pub mod crc;
pub mod json;
pub mod obs;
pub mod pool;
pub mod rng;
