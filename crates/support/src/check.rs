//! A mini property-testing harness with bounded shrinking and a
//! regression-seed corpus format.
//!
//! Replaces the external `proptest` dependency for the workspace's needs:
//! generate random inputs from a closure over [`ChaCha8Rng`], assert a
//! property, and on failure shrink the counterexample with a bounded
//! greedy search, reporting the case seed so it can be pinned.
//!
//! # Determinism and case seeds
//!
//! Each run derives one seed per case from the runner seed with
//! [`SplitMix64`]: case `k` uses `SplitMix64(runner_seed)` output `k`.
//! A failure report names the *case seed*; replaying it reproduces the
//! exact generated input regardless of which case index it occupied.
//!
//! # Regression corpus format
//!
//! A corpus file is line-oriented: blank lines and `#` comments are
//! ignored, every other line is `cc <case-seed>` with the seed in
//! hexadecimal (`cc 0x1f2e...`) or decimal. Corpus seeds are replayed
//! before any novel cases, mirroring the `proptest-regressions`
//! convention:
//!
//! ```text
//! # Seeds for failure cases the harness found in the past.
//! cc 0x00000000deadbeef  # shrank to Network { ... }
//! ```
//!
//! # Example
//!
//! ```
//! use wolt_support::check::Runner;
//! use wolt_support::rng::Rng;
//!
//! Runner::new("addition_commutes").cases(64).run(
//!     |rng| (rng.gen_range(0.0..1e6), rng.gen_range(0.0..1e6)),
//!     |&(a, b)| {
//!         if a + b == b + a {
//!             Ok(())
//!         } else {
//!             Err(format!("{a} + {b} not commutative"))
//!         }
//!     },
//! );
//! ```

use std::fmt::Debug;
use std::path::Path;

use crate::rng::{ChaCha8Rng, RngCore, SeedableRng, SplitMix64};

/// Default number of novel cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Default bound on shrink attempts.
pub const DEFAULT_SHRINK_STEPS: u32 = 1024;

/// Configures and executes one property.
#[derive(Debug, Clone)]
pub struct Runner {
    name: String,
    cases: u32,
    seed: u64,
    max_shrink_steps: u32,
    corpus: Vec<u64>,
}

impl Runner {
    /// A runner with the default configuration. `name` appears in failure
    /// reports; use the test function's name.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            cases: DEFAULT_CASES,
            seed: 0,
            max_shrink_steps: DEFAULT_SHRINK_STEPS,
            corpus: Vec::new(),
        }
    }

    /// Sets the number of novel cases.
    #[must_use]
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the runner seed (novel case seeds derive from it).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Bounds the shrinking search.
    #[must_use]
    pub fn max_shrink_steps(mut self, steps: u32) -> Self {
        self.max_shrink_steps = steps;
        self
    }

    /// Adds explicit regression case seeds, replayed before novel cases.
    #[must_use]
    pub fn regression_seeds(mut self, seeds: &[u64]) -> Self {
        self.corpus.extend_from_slice(seeds);
        self
    }

    /// Loads a regression corpus file (see the module docs for the
    /// format). A missing file is fine — there are no regressions yet.
    ///
    /// # Panics
    ///
    /// Panics if the file exists but a line cannot be parsed: a corrupt
    /// corpus silently dropping cases would defeat its purpose.
    #[must_use]
    pub fn corpus_file(mut self, path: impl AsRef<Path>) -> Self {
        let path = path.as_ref();
        let Ok(text) = std::fs::read_to_string(path) else {
            return self;
        };
        self.corpus
            .extend(parse_corpus(&text).unwrap_or_else(|line| {
                panic!(
                    "corrupt corpus {}: unparseable line {line:?}",
                    path.display()
                )
            }));
        self
    }

    /// Runs the property without shrinking.
    ///
    /// `generate` builds an input from the per-case RNG; `property`
    /// returns `Err(reason)` to fail the case.
    ///
    /// # Panics
    ///
    /// Panics with a counterexample report on the first failing case.
    pub fn run<T, G, P>(self, generate: G, property: P)
    where
        T: Debug,
        G: Fn(&mut ChaCha8Rng) -> T,
        P: Fn(&T) -> Result<(), String>,
    {
        self.run_shrink(generate, |_| Vec::new(), property);
    }

    /// Runs the property with shrinking.
    ///
    /// On failure, `shrink` proposes simpler variants of the failing
    /// input; the search greedily follows the first variant that still
    /// fails, up to the configured step bound.
    ///
    /// # Panics
    ///
    /// Panics with a counterexample report on the first failing case.
    pub fn run_shrink<T, G, S, P>(self, generate: G, shrink: S, property: P)
    where
        T: Debug,
        G: Fn(&mut ChaCha8Rng) -> T,
        S: Fn(&T) -> Vec<T>,
        P: Fn(&T) -> Result<(), String>,
    {
        let mut sm = SplitMix64::new(self.seed);
        let novel = (0..self.cases).map(|_| sm.next_u64());
        let replay = self.corpus.iter().copied();
        for (idx, case_seed) in replay.chain(novel).enumerate() {
            let replayed = idx < self.corpus.len();
            let mut rng = ChaCha8Rng::seed_from_u64(case_seed);
            let input = generate(&mut rng);
            if let Err(reason) = property(&input) {
                let (smallest, small_reason, steps) =
                    shrink_failure(input, reason, &shrink, &property, self.max_shrink_steps);
                panic!(
                    "property {name:?} failed on {kind} case seed {seed:#018x}\n\
                     reason: {small_reason}\n\
                     counterexample (after {steps} shrink steps): {smallest:#?}\n\
                     to pin this case, add the line below to the test's corpus file:\n\
                     cc {seed:#018x}",
                    name = self.name,
                    kind = if replayed { "replayed" } else { "novel" },
                    seed = case_seed,
                    small_reason = small_reason,
                    steps = steps,
                    smallest = smallest,
                );
            }
        }
    }
}

/// Greedy bounded shrink: repeatedly move to the first proposed variant
/// that still fails. Returns the final counterexample, its failure
/// reason, and the number of accepted shrink steps.
fn shrink_failure<T, S, P>(
    mut current: T,
    mut reason: String,
    shrink: &S,
    property: &P,
    max_steps: u32,
) -> (T, String, u32)
where
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut accepted = 0u32;
    let mut budget = max_steps;
    'outer: while budget > 0 {
        for candidate in shrink(&current) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(r) = property(&candidate) {
                current = candidate;
                reason = r;
                accepted += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, reason, accepted)
}

/// Parses corpus text; `Err` carries the first malformed line.
fn parse_corpus(text: &str) -> Result<Vec<u64>, String> {
    let mut seeds = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some(value) = line.strip_prefix("cc").map(str::trim) else {
            return Err(raw.to_string());
        };
        let parsed = if let Some(hex) = value.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            value.parse()
        };
        match parsed {
            Ok(seed) => seeds.push(seed),
            Err(_) => return Err(raw.to_string()),
        }
    }
    Ok(seeds)
}

/// Shrink helpers for common input shapes.
pub mod shrinkers {
    /// Simpler variants of a float: zero, the rounded value, and halves
    /// toward `anchor` (typically the generator's lower bound).
    pub fn f64_toward(value: f64, anchor: f64) -> Vec<f64> {
        let mut out = Vec::new();
        if value != anchor {
            out.push(anchor);
        }
        let rounded = value.round();
        if rounded != value && rounded != anchor {
            out.push(rounded);
        }
        let halfway = anchor + (value - anchor) / 2.0;
        if halfway != value && halfway != anchor {
            out.push(halfway);
        }
        out
    }

    /// Vectors with one element removed, in order.
    pub fn vec_remove_each<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
        (0..items.len())
            .map(|skip| {
                items
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, v)| v.clone())
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn passing_property_is_silent() {
        Runner::new("tautology").cases(32).run(
            |rng| rng.gen_range(0..100u64),
            |&v| {
                if v < 100 {
                    Ok(())
                } else {
                    Err("impossible".into())
                }
            },
        );
    }

    #[test]
    fn failing_property_reports_seed_and_counterexample() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Runner::new("always_fails").cases(4).run(
                |rng| rng.gen_range(0..10u64),
                |_| Err("forced failure".into()),
            );
        }));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("always_fails"), "{message}");
        assert!(message.contains("forced failure"), "{message}");
        assert!(message.contains("cc 0x"), "{message}");
    }

    #[test]
    fn failure_is_deterministic() {
        let run = || {
            catch_unwind(AssertUnwindSafe(|| {
                Runner::new("det").cases(16).seed(5).run(
                    |rng| rng.gen_range(0.0..100.0),
                    |&v| {
                        if v < 90.0 {
                            Ok(())
                        } else {
                            Err(format!("{v}"))
                        }
                    },
                )
            }))
            .unwrap_err()
            .downcast::<String>()
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shrinking_reaches_a_local_minimum() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Runner::new("shrinks").cases(50).run_shrink(
                |rng| rng.gen_range(0..1000u64),
                |&v| (0..v).rev().take(8).collect(),
                |&v| {
                    if v < 10 {
                        Ok(())
                    } else {
                        Err("too big".into())
                    }
                },
            );
        }));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        // Greedy descent by 1 always lands on the boundary value 10.
        assert!(message.contains("counterexample"), "{message}");
        assert!(message.contains("10"), "{message}");
    }

    #[test]
    fn corpus_seeds_replay_first() {
        // 0xBAD is a seed whose first draw we force to fail below.
        let result = catch_unwind(AssertUnwindSafe(|| {
            Runner::new("replay")
                .regression_seeds(&[0xBAD])
                .cases(0)
                .run(|rng| rng.next_u64(), |_| Err("replayed".into()));
        }));
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            message.contains("replayed case seed 0x0000000000000bad"),
            "{message}"
        );
    }

    #[test]
    fn corpus_parsing_accepts_comments_and_both_radixes() {
        let text = "# header\n\ncc 0x10 # shrank to Foo\ncc 17\n";
        assert_eq!(parse_corpus(text).unwrap(), vec![16, 17]);
        assert!(parse_corpus("sc 12").is_err());
        assert!(parse_corpus("cc notanumber").is_err());
    }

    #[test]
    fn corpus_file_loads_and_missing_is_fine() {
        let dir = std::env::temp_dir().join("wolt-support-check-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.corpus");
        std::fs::write(&path, "cc 0x2a\n").unwrap();
        let runner = Runner::new("io").corpus_file(&path);
        assert_eq!(runner.corpus, vec![42]);
        let runner = Runner::new("io").corpus_file(dir.join("absent.corpus"));
        assert!(runner.corpus.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shrink_helpers_propose_simpler_values() {
        let candidates = shrinkers::f64_toward(80.0, 20.0);
        assert!(candidates.contains(&20.0));
        assert!(candidates.contains(&50.0));
        assert!(shrinkers::f64_toward(20.0, 20.0).is_empty());

        let vecs = shrinkers::vec_remove_each(&[1, 2, 3]);
        assert_eq!(vecs, vec![vec![2, 3], vec![1, 3], vec![1, 2]]);
    }
}
