#!/usr/bin/env bash
# Regenerates every paper figure and extension experiment into results/.
# Usage: scripts/regenerate_all.sh  (from the repository root)
set -euo pipefail

out=results
mkdir -p "$out"

bins=(fig2a fig2b fig2c fig3 fig4a fig4b fig4c fig5 fig6a fig6b fig6c fairness ablation resilience flow_fidelity)
for bin in "${bins[@]}"; do
    echo ">>> $bin"
    cargo run --quiet --release -p wolt-bench --bin "$bin" | tee "$out/$bin.csv"
done

echo ">>> micro-benchmarks (plain harness binaries; CSV on stdout)"
benches=(bench_hungarian bench_association bench_flowsim bench_mac_sims bench_phase_solvers bench_sharing_models)
for bench in "${benches[@]}"; do
    echo ">>> $bench"
    cargo run --quiet --release -p wolt-bench --bin "$bench" | tee "$out/$bench.csv"
done

echo "all experiment outputs written to $out/"
