#!/usr/bin/env bash
# Burst-telemetry smoke test for the wolt daemon: boot the Central
# Controller with coalescing on (the default), connect one agent per
# user with --burst so every scan report is re-sent back-to-back, and
# require a clean converged session whose metrics show the coalescer
# actually dropped stale burst copies (daemon.frames_coalesced > 0).
# Used by CI (with a hard timeout and WOLT_THREADS=2) and runnable
# locally:
#
#   cargo build --release -p wolt-cli && bash scripts/burst_smoke.sh
set -euo pipefail

BIN="${BIN:-target/release/wolt}"
USERS="${USERS:-7}"
SEED="${SEED:-1}"
BURST="${BURST:-8}"
METRICS_OUT="${METRICS_OUT:-}"

WORK="$(mktemp -d)"
[ -n "$METRICS_OUT" ] || METRICS_OUT="$WORK/metrics.json"
cleanup() {
    rm -rf "$WORK"
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
}
trap cleanup EXIT

# First numeric value of a named counter in a metrics JSON dump.
counter() {
    grep -o "\"$2\": [0-9]*" "$1" | head -n 1 | grep -o '[0-9]*$' || echo 0
}

"$BIN" serve --addr 127.0.0.1:0 --preset lab --users "$USERS" --seed "$SEED" \
    --coalesce on --addr-file "$WORK/addr" --output "$WORK/report.json" \
    --metrics-out "$METRICS_OUT" &
SERVE_PID=$!

for _ in $(seq 1 200); do
    [ -s "$WORK/addr" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "daemon exited before binding" >&2; exit 1; }
    sleep 0.05
done
[ -s "$WORK/addr" ] || { echo "daemon never published its address" >&2; exit 1; }
ADDR="$(cat "$WORK/addr")"

for i in $(seq 0 $((USERS - 1))); do
    "$BIN" agent --addr "$ADDR" --preset lab --users "$USERS" --seed "$SEED" \
        --client "$i" --name "burst-$i" --burst "$BURST" &
done

wait "$SERVE_PID"
if ! grep -q '"completed": true' "$WORK/report.json"; then
    echo "burst session did not converge:" >&2
    cat "$WORK/report.json" >&2
    exit 1
fi

# Every agent sent each report $BURST times; the coalescer (plus the
# watermark dedup behind it) must have absorbed the copies without
# disturbing the session — and must have seen at least one run to drain.
[ -s "$METRICS_OUT" ] || { echo "daemon wrote no --metrics-out dump" >&2; exit 1; }
COALESCED="$(counter "$METRICS_OUT" daemon.frames_coalesced)"
if [ "$COALESCED" -le 0 ]; then
    echo "burst run coalesced no frames (daemon.frames_coalesced = $COALESCED):" >&2
    cat "$METRICS_OUT" >&2
    exit 1
fi
for name in core.solves cc.directives daemon.frames_in; do
    v="$(counter "$METRICS_OUT" "$name")"
    if [ "$v" -le 0 ]; then
        echo "metrics dump has $name = $v (expected > 0):" >&2
        cat "$METRICS_OUT" >&2
        exit 1
    fi
done

wait
echo "burst smoke: clean converged session over $ADDR with $USERS agents" \
    "at burst=$BURST; $COALESCED stale frames coalesced"
