#!/usr/bin/env bash
# Loopback smoke test for the wolt fleet: boot one `wolt serve --sites`
# process hosting three PLC segments on 127.0.0.1, connect four agents
# per site, drain one site mid-run over the wire (`wolt fleet drain`),
# and require that the survivors converge untouched while the drained
# site reports incomplete. Used by CI (with a hard timeout and
# WOLT_THREADS=2) and runnable locally:
#
#   cargo build --release -p wolt-cli && bash scripts/fleet_smoke.sh
set -euo pipefail

BIN="${BIN:-target/release/wolt}"
USERS="${USERS:-4}"

WORK="$(mktemp -d)"
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# Three sites; beta gets drained before its agents ever connect, so its
# connect window (30 s default) also bounds the script's worst case.
cat > "$WORK/sites.json" <<EOF
{"sites": [
    {"id": "alpha", "preset": "lab", "users": $USERS, "seed": 11, "policy": "wolt"},
    {"id": "beta",  "preset": "lab", "users": $USERS, "seed": 12, "policy": "greedy"},
    {"id": "gamma", "preset": "lab", "users": $USERS, "seed": 13, "policy": "rssi"}
]}
EOF

"$BIN" serve --addr 127.0.0.1:0 --sites "$WORK/sites.json" \
    --snapshot "$WORK/fleet-root" --addr-file "$WORK/addr" \
    --output "$WORK/report.json" --linger-ms 1000 &
SERVE_PID=$!

for _ in $(seq 1 200); do
    [ -s "$WORK/addr" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "fleet exited before binding" >&2; exit 1; }
    sleep 0.05
done
[ -s "$WORK/addr" ] || { echo "fleet never published its address" >&2; exit 1; }
ADDR="$(cat "$WORK/addr")"

# The registry answers status before any agent shows up.
"$BIN" fleet status --addr "$ADDR" --output "$WORK/status.json"
for site in alpha beta gamma; do
    grep -q "\"$site\"" "$WORK/status.json" ||
        { echo "fleet status is missing $site:" >&2; cat "$WORK/status.json" >&2; exit 1; }
done

# Drain beta mid-run: no agents will be routed to it, and the fleet must
# finish without them.
"$BIN" fleet drain --addr "$ADDR" --site beta

# Survivors get their agents; beta gets none (its hello would be
# refused with site_gone anyway — proven by the late-agent probe below).
for site in alpha gamma; do
    case "$site" in
        alpha) SEED=11 ;;
        gamma) SEED=13 ;;
    esac
    for i in $(seq 0 $((USERS - 1))); do
        "$BIN" agent --addr "$ADDR" --site "$site" --preset lab --users "$USERS" \
            --seed "$SEED" --client "$i" --name "$site-$i" &
    done
done

# A straggler naming the drained site must fail fast (site_gone is
# fatal), not hang retrying.
if "$BIN" agent --addr "$ADDR" --site beta --preset lab --users "$USERS" \
    --seed 12 --client 0 --name beta-late 2> "$WORK/late.err"; then
    echo "agent for the drained site unexpectedly succeeded" >&2
    exit 1
fi
grep -qiE "gone|not hosted" "$WORK/late.err" ||
    { echo "drained-site agent failed without the typed refusal:" >&2; cat "$WORK/late.err" >&2; exit 1; }

wait "$SERVE_PID"

# Survivors converged; the drained site is present but incomplete.
python3 - "$WORK/report.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
sites = report["sites"]
for site in ("alpha", "gamma"):
    if not sites.get(site, {}).get("completed"):
        sys.exit(f"site {site} did not converge: {sites.get(site)}")
beta = sites.get("beta", {})
if beta.get("completed"):
    sys.exit("drained site beta reports completed")
if "error" in beta:
    sys.exit(f"drained site beta errored instead of stopping: {beta['error']}")
EOF

# Per-site snapshot isolation on disk: each surviving site owns its own
# subdirectory under the fleet root.
for site in alpha gamma; do
    ls "$WORK/fleet-root/$site"/snapshot.*.json >/dev/null 2>&1 ||
        { echo "no snapshot generations under fleet-root/$site" >&2; exit 1; }
done

wait
echo "fleet smoke: 3 sites over $ADDR, beta drained mid-run;" \
    "alpha and gamma converged with $USERS agents each, typed site_gone verified"
