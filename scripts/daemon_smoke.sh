#!/usr/bin/env bash
# Loopback smoke test for the wolt daemon: boot the Central Controller on
# 127.0.0.1 with an OS-assigned port, connect one agent per user, and
# require a clean converged session. Used by CI (with a hard timeout and
# WOLT_THREADS=2) and runnable locally:
#
#   cargo build --release -p wolt-cli && bash scripts/daemon_smoke.sh
set -euo pipefail

BIN="${BIN:-target/release/wolt}"
USERS="${USERS:-7}"
SEED="${SEED:-1}"

WORK="$(mktemp -d)"
cleanup() {
    rm -rf "$WORK"
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
}
trap cleanup EXIT

"$BIN" serve --addr 127.0.0.1:0 --preset lab --users "$USERS" --seed "$SEED" \
    --addr-file "$WORK/addr" --output "$WORK/report.json" &
SERVE_PID=$!

# The daemon writes its bound address once the listener is up.
for _ in $(seq 1 200); do
    [ -s "$WORK/addr" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "daemon exited before binding" >&2; exit 1; }
    sleep 0.05
done
[ -s "$WORK/addr" ] || { echo "daemon never published its address" >&2; exit 1; }
ADDR="$(cat "$WORK/addr")"

for i in $(seq 0 $((USERS - 1))); do
    "$BIN" agent --addr "$ADDR" --preset lab --users "$USERS" --seed "$SEED" \
        --client "$i" --name "smoke-$i" &
done

wait "$SERVE_PID"
if ! grep -q '"completed": true' "$WORK/report.json"; then
    echo "session did not converge:" >&2
    cat "$WORK/report.json" >&2
    exit 1
fi
wait
echo "daemon smoke: clean converged session over $ADDR with $USERS agents"
