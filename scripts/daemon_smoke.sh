#!/usr/bin/env bash
# Loopback smoke test for the wolt daemon: boot the Central Controller on
# 127.0.0.1 with an OS-assigned port, connect one agent per user, and
# require a clean converged session — plus a live `wolt metrics` query
# against the running daemon and a `--metrics-out` dump at shutdown.
# Used by CI (with a hard timeout and WOLT_THREADS=2) and runnable
# locally:
#
#   cargo build --release -p wolt-cli && bash scripts/daemon_smoke.sh
set -euo pipefail

BIN="${BIN:-target/release/wolt}"
USERS="${USERS:-7}"
SEED="${SEED:-1}"
# Where the daemon dumps its final metrics snapshot; CI points this at a
# workspace path and uploads it as an artifact.
METRICS_OUT="${METRICS_OUT:-}"

WORK="$(mktemp -d)"
[ -n "$METRICS_OUT" ] || METRICS_OUT="$WORK/metrics.json"
cleanup() {
    rm -rf "$WORK"
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null || true
}
trap cleanup EXIT

# First numeric value of a named counter in a metrics JSON dump.
counter() {
    grep -o "\"$2\": [0-9]*" "$1" | head -n 1 | grep -o '[0-9]*$' || echo 0
}

"$BIN" serve --addr 127.0.0.1:0 --preset lab --users "$USERS" --seed "$SEED" \
    --addr-file "$WORK/addr" --output "$WORK/report.json" \
    --metrics-out "$METRICS_OUT" --linger-ms 2000 &
SERVE_PID=$!

# The daemon writes its bound address once the listener is up.
for _ in $(seq 1 200); do
    [ -s "$WORK/addr" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "daemon exited before binding" >&2; exit 1; }
    sleep 0.05
done
[ -s "$WORK/addr" ] || { echo "daemon never published its address" >&2; exit 1; }
ADDR="$(cat "$WORK/addr")"

for i in $(seq 0 $((USERS - 1))); do
    "$BIN" agent --addr "$ADDR" --preset lab --users "$USERS" --seed "$SEED" \
        --client "$i" --name "smoke-$i" &
done

# Poll the live daemon over the metrics envelope until its counters show
# real work (the --linger-ms window guarantees the finished session stays
# observable). This exercises the wire-protocol metrics path end to end.
LIVE_OK=0
for _ in $(seq 1 100); do
    if "$BIN" metrics --addr "$ADDR" --output "$WORK/live_metrics.json" 2>/dev/null; then
        if [ "$(counter "$WORK/live_metrics.json" core.solves)" -gt 0 ] &&
            [ "$(counter "$WORK/live_metrics.json" daemon.frames_in)" -gt 0 ]; then
            LIVE_OK=1
            break
        fi
    fi
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if [ "$LIVE_OK" -ne 1 ]; then
    echo "live metrics query never showed non-zero solves/frames_in" >&2
    [ -f "$WORK/live_metrics.json" ] && cat "$WORK/live_metrics.json" >&2
    exit 1
fi

wait "$SERVE_PID"
if ! grep -q '"completed": true' "$WORK/report.json"; then
    echo "session did not converge:" >&2
    cat "$WORK/report.json" >&2
    exit 1
fi

# The shutdown dump must exist and agree with the live view: non-zero
# wire traffic and solver work.
[ -s "$METRICS_OUT" ] || { echo "daemon wrote no --metrics-out dump" >&2; exit 1; }
for name in core.solves cc.directives daemon.frames_in daemon.frames_out; do
    v="$(counter "$METRICS_OUT" "$name")"
    if [ "$v" -le 0 ]; then
        echo "metrics dump has $name = $v (expected > 0):" >&2
        cat "$METRICS_OUT" >&2
        exit 1
    fi
done

wait
echo "daemon smoke: clean converged session over $ADDR with $USERS agents;" \
    "live metrics + shutdown dump verified ($METRICS_OUT)"
