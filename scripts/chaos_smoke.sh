#!/usr/bin/env bash
# Chaos smoke test for the wolt daemon: sweep every declared crash point
# with `wolt chaos` — each run spawns a real `wolt serve` child armed
# (via WOLT_CRASH) with a seeded crash plan, lets it abort mid-write,
# restarts it unarmed against the same generational snapshot store, and
# requires the recovered session's canonical report to be byte-identical
# to an uncrashed baseline. Used by CI (with a hard timeout and
# WOLT_THREADS=2) and runnable locally:
#
#   cargo build --release -p wolt-cli && bash scripts/chaos_smoke.sh
set -euo pipefail

BIN="${BIN:-target/release/wolt}"
USERS="${USERS:-7}"
SEED="${SEED:-1}"
CHAOS_SEED="${CHAOS_SEED:-7}"
# Where the sweep report lands; CI points this at a workspace path and
# uploads it as an artifact.
REPORT_OUT="${REPORT_OUT:-}"

WORK="$(mktemp -d)"
[ -n "$REPORT_OUT" ] || REPORT_OUT="$WORK/chaos.json"
cleanup() {
    rm -rf "$WORK"
}
trap cleanup EXIT

# `wolt chaos` exits non-zero on its own when a point never fires, a run
# fails to recover within the restart budget, or any recovered run's
# canonical report diverges from the baseline.
"$BIN" chaos --workdir "$WORK/runs" --preset lab --users "$USERS" \
    --seed "$SEED" --chaos-seed "$CHAOS_SEED" --max-restarts 3 \
    --output "$REPORT_OUT"

# Belt and braces over the report itself: the whole catalogue was swept,
# every point actually crashed the daemon, and every recovery matched.
POINTS="$(grep -c '"point":' "$REPORT_OUT" || echo 0)"
if [ "$POINTS" -ne 5 ]; then
    echo "expected 5 swept crash points, report shows $POINTS:" >&2
    cat "$REPORT_OUT" >&2
    exit 1
fi
if ! grep -q '"all_match": true' "$REPORT_OUT"; then
    echo "chaos report does not assert all_match:" >&2
    cat "$REPORT_OUT" >&2
    exit 1
fi
if grep -q '"crashes": 0' "$REPORT_OUT"; then
    echo "a swept point never crashed the daemon:" >&2
    cat "$REPORT_OUT" >&2
    exit 1
fi

echo "chaos smoke: $POINTS crash points fired, recovered from the same" \
    "snapshot store, and matched the uncrashed baseline ($REPORT_OUT)"
