//! Overload-protection tests for `wolt-daemon`: connection caps, inbox
//! shedding, and read deadlines must each engage with *exact* counter
//! evidence — and none of them may perturb the session's decisions.
//!
//! Timing discipline: every test synchronizes on observable daemon state
//! (counters over the metrics wire, or the daemon closing a socket)
//! rather than sleeps, so the exact counts asserted here are forced by
//! the protocol, not by scheduling luck. The `linger` window doubles as
//! a deterministic overload stage: the session loop is provably done
//! driving events (the snapshot counter says so) and not yet draining
//! its inbox, so whatever a flood client pushes in that window meets the
//! cap head-on.

use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use wolt_daemon::{run_agent, wire, Daemon, DaemonConfig, DaemonOutcome, Envelope};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::obs;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};
use wolt_testbed::protocol::ToController;
use wolt_testbed::{
    run_faulty_session, ControllerPolicy, FaultPlan, RigConfig, SessionEvent, SessionReport,
};

const NOISE_SEED: u64 = 7;

/// Serializes the tests in this binary: the obs counters they assert on
/// are process-global.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn lab_scenario(users: usize, seed: u64) -> Scenario {
    let cfg = ScenarioConfig::lab(users);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Scenario::generate(&cfg, &mut rng).unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wolt-overload-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Polls the daemon's metrics endpoint over its own control connection
/// until `done` approves a snapshot. Returns the connection too — a
/// caller racing against connection-slot accounting must keep it open
/// (or drop it) explicitly rather than having it die at a random tick.
fn poll_metrics_until(
    addr: SocketAddr,
    what: &str,
    done: impl Fn(&obs::ObsSnapshot) -> bool,
) -> (TcpStream, obs::ObsSnapshot) {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut stream = loop {
        match TcpStream::connect(addr) {
            Ok(s) => break s,
            Err(_) if Instant::now() < deadline => thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("could not reach the daemon: {e}"),
        }
    };
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    loop {
        wire::send(&mut stream, &Envelope::MetricsRequest).expect("metrics request sends");
        match wire::recv(&mut stream).expect("metrics reply arrives") {
            Some(Envelope::Metrics { metrics }) => {
                if done(&metrics) {
                    return (stream, metrics);
                }
                assert!(
                    Instant::now() < deadline,
                    "daemon never reached the expected state ({what}); \
                     last snapshot: {metrics:?}"
                );
                thread::sleep(Duration::from_millis(25));
            }
            other => panic!("expected a metrics reply, got {other:?}"),
        }
    }
}

fn rig_reference(
    scenario: &Scenario,
    policy: ControllerPolicy,
    events: &[SessionEvent],
) -> SessionReport {
    run_faulty_session(
        scenario,
        &RigConfig::new(policy),
        events,
        NOISE_SEED,
        &FaultPlan::none(),
    )
    .unwrap()
}

#[test]
fn over_cap_connections_get_a_typed_busy_reply_and_exact_rejection_counts() {
    let _guard = lock();
    let before = obs::snapshot();

    // Capacity 2 exactly fits the one real agent plus the metrics
    // poller's control connection; everything beyond that must bounce.
    let scenario = lab_scenario(1, 31);
    let snap_dir = temp_dir("busy");
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    config.max_connections = 2;
    config.snapshot_dir = Some(snap_dir.clone());
    config.linger = Duration::from_secs(4);
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        scenario.clone(),
        vec![SessionEvent::Join(0)],
        config,
    )
    .unwrap();
    let addr = daemon.local_addr().unwrap();
    let agent = {
        let scenario = scenario.clone();
        thread::spawn(move || run_agent(addr, &scenario, 0, "laptop-0"))
    };
    let daemon = thread::spawn(move || daemon.run());

    // The one snapshot save marks the session loop done driving events;
    // the agent provably holds its slot until dismissal (post-linger),
    // and the poller's connection stays open as the second slot-holder.
    let rejected_before = before.counter("daemon.conns_rejected");
    let (holder, _) = poll_metrics_until(addr, "one snapshot saved", |m| {
        m.counter("daemon.snapshots") > before.counter("daemon.snapshots")
    });

    let mut rejected = Vec::new();
    for _ in 0..3 {
        let mut extra = TcpStream::connect(addr).unwrap();
        extra
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        match wire::recv(&mut extra).unwrap() {
            Some(Envelope::Busy { limit }) => {
                assert_eq!(limit, 2, "busy reply advertises the configured cap")
            }
            other => panic!("expected a busy reply, got {other:?}"),
        }
        // The daemon hangs up after the busy reply.
        assert!(wire::recv(&mut extra).unwrap().is_none());
        rejected.push(extra);
    }
    drop(holder);

    let outcome = daemon.join().unwrap().unwrap();
    agent.join().unwrap().unwrap();
    std::fs::remove_dir_all(&snap_dir).unwrap();
    assert!(outcome.completed);
    let after = obs::snapshot();
    assert_eq!(
        after.counter("daemon.conns_rejected") - rejected_before,
        3,
        "exactly the three over-cap connections were rejected"
    );
}

#[test]
fn telemetry_flood_sheds_exactly_the_frames_beyond_the_inbox_cap() {
    let _guard = lock();
    let before = obs::snapshot();

    // Two expected agents: one real, one a hand-rolled flood client that
    // handshakes (so its frames reach the session inbox) but is never
    // the subject of any event.
    let scenario = lab_scenario(2, 47);
    let n_ext = scenario.extender_positions.len();
    let events = vec![SessionEvent::Join(0)];
    let reference = rig_reference(&scenario, ControllerPolicy::Wolt, &events);
    let snap_dir = temp_dir("shed");
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    config.inbox_cap = 4;
    config.snapshot_dir = Some(snap_dir.clone());
    config.linger = Duration::from_secs(4);
    let daemon = Daemon::bind("127.0.0.1:0", scenario.clone(), events, config).unwrap();
    let addr = daemon.local_addr().unwrap();
    let agent = {
        let scenario = scenario.clone();
        thread::spawn(move || run_agent(addr, &scenario, 0, "laptop-0"))
    };
    let daemon = thread::spawn(move || daemon.run());
    let mut flooder = TcpStream::connect(addr).unwrap();
    flooder
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    wire::send(
        &mut flooder,
        &Envelope::Hello {
            client: 1,
            name: "flooder".into(),
            site: None,
        },
    )
    .unwrap();
    assert!(matches!(
        wire::recv(&mut flooder).unwrap(),
        Some(Envelope::HelloAck { .. })
    ));

    // Session loop provably inside the linger window: its one event is
    // snapshotted and it will not recv again until teardown. Everything
    // pushed now meets the cap: 20 reports, 4 admitted, 16 shed.
    let shed_before = before.counter("daemon.frames_shed");
    let _ = poll_metrics_until(addr, "one snapshot saved", |m| {
        m.counter("daemon.snapshots") > before.counter("daemon.snapshots")
    });
    for _ in 0..20 {
        wire::send(
            &mut flooder,
            &Envelope::Ctrl(ToController::Report {
                client: 1,
                epoch: 99,
                rates: vec![None; n_ext],
                attached: 0,
            }),
        )
        .unwrap();
    }
    // Wait on the counter itself: once 16 sheds are visible, the flood
    // has fully landed and the count can no longer move (the teardown
    // drain *consumes* the 4 admitted frames, it does not shed them).
    let _ = poll_metrics_until(addr, "16 frames shed", |m| {
        m.counter("daemon.frames_shed") >= shed_before + 16
    });

    let outcome: DaemonOutcome = daemon.join().unwrap().unwrap();
    agent.join().unwrap().unwrap();
    drop(flooder);
    std::fs::remove_dir_all(&snap_dir).unwrap();

    assert!(outcome.completed);
    let after = obs::snapshot();
    assert_eq!(
        after.counter("daemon.frames_shed") - shed_before,
        16,
        "exactly the frames beyond the cap were shed"
    );
    // Shedding never touched the decision path: the flooded session's
    // report is byte-identical to the clean in-process rig.
    assert_eq!(outcome.report.canonical(), reference.canonical());
}

#[test]
fn mid_frame_staller_is_deadlined_closed_and_counted_once() {
    let _guard = lock();
    let before = obs::snapshot();

    let scenario = lab_scenario(1, 13);
    let snap_dir = temp_dir("stall");
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    config.read_stall = Duration::from_millis(200);
    config.snapshot_dir = Some(snap_dir.clone());
    config.linger = Duration::from_secs(4);
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        scenario.clone(),
        vec![SessionEvent::Join(0)],
        config,
    )
    .unwrap();
    let addr = daemon.local_addr().unwrap();
    let agent = {
        let scenario = scenario.clone();
        thread::spawn(move || run_agent(addr, &scenario, 0, "laptop-0"))
    };
    let daemon = thread::spawn(move || daemon.run());
    let _ = poll_metrics_until(addr, "one snapshot saved", |m| {
        m.counter("daemon.snapshots") > before.counter("daemon.snapshots")
    });

    // A connection that starts a frame and never finishes it: length
    // prefix promising 16 bytes, then 4 bytes, then silence. An idle
    // connection would be tolerated forever; a mid-frame stall must be
    // killed at the deadline.
    let mut staller = TcpStream::connect(addr).unwrap();
    staller
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    {
        use std::io::Write as _;
        staller.write_all(&16u32.to_be_bytes()).unwrap();
        staller.write_all(b"{\"t\"").unwrap();
        staller.flush().unwrap();
    }
    // The daemon hangs up on us — that EOF is the deadline firing.
    {
        use std::io::Read as _;
        let mut buf = [0u8; 16];
        let n = staller.read(&mut buf).unwrap();
        assert_eq!(n, 0, "daemon should close the stalled connection");
    }

    let outcome = daemon.join().unwrap().unwrap();
    agent.join().unwrap().unwrap();
    std::fs::remove_dir_all(&snap_dir).unwrap();
    assert!(outcome.completed);
    let after = obs::snapshot();
    assert_eq!(
        after.counter("daemon.read_timeouts") - before.counter("daemon.read_timeouts"),
        1,
        "the one mid-frame staller is counted exactly once"
    );
}
