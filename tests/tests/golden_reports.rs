//! Golden snapshots of canonical session reports.
//!
//! The canonical rendering of a clean session is the workspace's
//! determinism contract: for a fixed (scenario, seed, policy) it must be
//! byte-identical run over run, thread count over thread count — and,
//! since the observability layer landed, with metrics collection enabled
//! *or* disabled. These tests pin the exact strings for all three online
//! controller policies on both scenario presets, so any change to
//! solver decisions, report assembly, or float formatting — and any
//! observation that perturbs a result — fails a golden comparison
//! instead of drifting silently.
//!
//! Regenerate after an *intentional* behavior change with:
//!
//! ```text
//! cargo test -p wolt-tests --test golden_reports -- --ignored --nocapture
//! ```
//!
//! and paste the printed `GOLDEN` lines back into [`GOLDENS`].

use std::sync::{Mutex, MutexGuard, OnceLock};

use wolt_sim::Scenario;
use wolt_support::obs;
use wolt_testbed::{run_faulty_session, ControllerPolicy, FaultPlan, RigConfig, SessionEvent};
use wolt_tests::{enterprise_scenario, lab_scenario};

const SCENARIO_SEED: u64 = 42;
const NOISE_SEED: u64 = 0;

/// The pinned canonical reports: (scenario preset, policy, exact string).
const GOLDENS: &[(&str, &str, &str)] = &[
    (
        "lab",
        "wolt",
        "policy=WOLT association=[Some(1), Some(1), Some(2), Some(0), Some(0), Some(0), Some(1)] aggregate=59.78445182724253 per_user=[2.947674418604652, 2.947674418604652, 42.25, 2.897142857142857, 2.897142857142857, 2.897142857142857, 2.947674418604652] jain=Some(0.27805625008638674) directives=4 switches=2 survivors=[0, 1, 2, 3, 4, 5, 6] crashed=[] wedged=[] declared_dead=[] unresponsive=[] degraded_solves=0",
    ),
    (
        "lab",
        "greedy",
        "policy=Greedy association=[Some(1), Some(2), Some(0), Some(0), Some(0), Some(0), Some(1)] aggregate=33.157558139534885 per_user=[9.75, 4.2250000000000005, 2.3581395348837213, 2.3581395348837213, 2.3581395348837213, 2.3581395348837213, 9.75] jain=Some(0.682222502418346) directives=2 switches=0 survivors=[0, 1, 2, 3, 4, 5, 6] crashed=[] wedged=[] declared_dead=[] unresponsive=[] degraded_solves=0",
    ),
    (
        "lab",
        "rssi",
        "policy=RSSI association=[Some(1), Some(1), Some(2), Some(0), Some(0), Some(0), Some(1)] aggregate=59.78445182724253 per_user=[2.947674418604652, 2.947674418604652, 42.25, 2.897142857142857, 2.897142857142857, 2.897142857142857, 2.947674418604652] jain=Some(0.27805625008638674) directives=0 switches=0 survivors=[0, 1, 2, 3, 4, 5, 6] crashed=[] wedged=[] declared_dead=[] unresponsive=[] degraded_solves=0",
    ),
    (
        "enterprise",
        "wolt",
        "policy=WOLT association=[Some(0), Some(5), Some(7), Some(3), Some(2), Some(1), Some(6), Some(14), Some(9), Some(10)] aggregate=71.50000000000001 per_user=[7.150000000000001, 7.150000000000001, 7.150000000000001, 7.150000000000001, 7.150000000000001, 7.150000000000001, 7.150000000000001, 7.150000000000001, 7.150000000000001, 7.15] jain=Some(1.0000000000000002) directives=6 switches=0 survivors=[0, 1, 2, 3, 4, 5, 6, 7, 8, 9] crashed=[] wedged=[] declared_dead=[] unresponsive=[] degraded_solves=0",
    ),
    (
        "enterprise",
        "greedy",
        "policy=Greedy association=[Some(0), Some(5), Some(4), Some(3), Some(2), Some(1), Some(6), Some(9), Some(12), Some(10)] aggregate=71.50000000000001 per_user=[7.150000000000001, 7.150000000000001, 7.15, 7.150000000000001, 7.150000000000001, 7.150000000000001, 7.150000000000001, 7.150000000000001, 7.150000000000001, 7.15] jain=Some(1.0000000000000002) directives=5 switches=0 survivors=[0, 1, 2, 3, 4, 5, 6, 7, 8, 9] crashed=[] wedged=[] declared_dead=[] unresponsive=[] degraded_solves=0",
    ),
    (
        "enterprise",
        "rssi",
        "policy=RSSI association=[Some(0), Some(5), Some(4), Some(3), Some(0), Some(1), Some(1), Some(5), Some(5), Some(0)] aggregate=35.75 per_user=[2.3833333333333337, 2.3833333333333337, 7.15, 7.150000000000001, 2.3833333333333337, 3.5750000000000006, 3.5750000000000006, 2.3833333333333337, 2.3833333333333337, 2.3833333333333337] jain=Some(0.7894736842105261) directives=0 switches=0 survivors=[0, 1, 2, 3, 4, 5, 6, 7, 8, 9] crashed=[] wedged=[] declared_dead=[] unresponsive=[] degraded_solves=0",
    ),
];

/// Serializes tests that flip the process-global obs switch.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn scenario_for(name: &str) -> Scenario {
    match name {
        "lab" => lab_scenario(7, SCENARIO_SEED),
        "enterprise" => enterprise_scenario(10, SCENARIO_SEED),
        other => panic!("unknown scenario preset {other:?}"),
    }
}

fn policy_for(name: &str) -> ControllerPolicy {
    match name {
        "wolt" => ControllerPolicy::Wolt,
        "greedy" => ControllerPolicy::Greedy,
        "rssi" => ControllerPolicy::Rssi,
        other => panic!("unknown policy {other:?}"),
    }
}

fn canonical(scenario: &Scenario, policy: ControllerPolicy) -> String {
    let events: Vec<SessionEvent> = (0..scenario.user_positions.len())
        .map(SessionEvent::Join)
        .collect();
    run_faulty_session(
        scenario,
        &RigConfig::new(policy),
        &events,
        NOISE_SEED,
        &FaultPlan::none(),
    )
    .expect("clean session completes")
    .canonical()
}

fn check_goldens(label: &str) {
    for (preset, policy_name, expect) in GOLDENS {
        let got = canonical(&scenario_for(preset), policy_for(policy_name));
        assert_eq!(
            got.as_str(),
            *expect,
            "canonical report drifted for {preset}/{policy_name} ({label})"
        );
    }
}

#[test]
fn golden_canonical_reports_with_obs_enabled() {
    let _guard = obs_lock();
    obs::set_enabled(true);
    check_goldens("obs enabled");
}

#[test]
fn golden_canonical_reports_with_obs_disabled() {
    let _guard = obs_lock();
    obs::set_enabled(false);
    // Metrics collection must be a pure observer: disabling it cannot
    // change a single byte of any report.
    let result = std::panic::catch_unwind(|| check_goldens("obs disabled"));
    obs::set_enabled(true);
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}

/// Regeneration helper — prints the current canonical strings in the
/// `GOLDENS` layout. Ignored in normal runs.
#[test]
#[ignore = "regeneration helper, not a check"]
fn print_goldens() {
    let _guard = obs_lock();
    for (preset, policy_name, _) in GOLDENS {
        let got = canonical(&scenario_for(preset), policy_for(policy_name));
        println!("GOLDEN\t{preset}\t{policy_name}\t{got}");
    }
}
