//! Cross-crate property-based tests: algorithm invariants on random
//! networks, on the in-tree `wolt_support::check` harness.
//!
//! The explicit `regression_*` tests at the bottom preserve the shrunk
//! failure cases proptest saved in `properties.proptest-regressions`
//! before the harness migration, with their exact network values.

use wolt_core::baselines::{Greedy, Optimal, Rssi};
use wolt_core::{evaluate, Association, AssociationPolicy, Network, Wolt};
use wolt_support::check::Runner;
use wolt_support::rng::{ChaCha8Rng, Rng};

/// Random small network: 2-4 extenders, 2-7 users, rates 1-50 Mbit/s with
/// some unreachable pairs, capacities 20-200 Mbit/s.
fn small_network(rng: &mut ChaCha8Rng) -> Network {
    let exts = rng.gen_range(2..=4usize);
    let users = rng.gen_range(2..=7usize);
    let caps: Vec<f64> = (0..exts).map(|_| rng.gen_range(20.0..200.0)).collect();
    let mut rates: Vec<Vec<f64>> = (0..users)
        .map(|_| {
            (0..exts)
                .map(|_| {
                    // 3:1 odds of a usable rate vs an unreachable pair.
                    if rng.gen_range(0..4u32) < 3 {
                        rng.gen_range(1.0..50.0)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    // Every user must reach some extender.
    for row in &mut rates {
        if row.iter().all(|&r| r == 0.0) {
            row[0] = 10.0;
        }
    }
    Network::from_raw(caps, rates).expect("patched networks are valid")
}

/// Like [`small_network`], but every (user, extender) pair is reachable
/// and there are at least as many users as extenders (the paper's
/// enterprise setting; Phase I's `c_j/|A|` utility assumes all extenders
/// end up active, which needs `|U| ≥ |A|`).
fn fully_reachable_network(rng: &mut ChaCha8Rng) -> Network {
    let exts = rng.gen_range(2..=4usize);
    let users = rng.gen_range(exts..=7usize);
    let caps: Vec<f64> = (0..exts).map(|_| rng.gen_range(20.0..200.0)).collect();
    let rates: Vec<Vec<f64>> = (0..users)
        .map(|_| (0..exts).map(|_| rng.gen_range(1.0..50.0)).collect())
        .collect();
    Network::from_raw(caps, rates).expect("fully reachable networks are valid")
}

/// Arbitrary finite, frequently degenerate raw network inputs: empty
/// dimensions, zero or negative capacities, all-unreachable users, and
/// the occasional ragged rate row.
fn degenerate_raw_inputs(rng: &mut ChaCha8Rng) -> (Vec<f64>, Vec<Vec<f64>>) {
    let exts = rng.gen_range(0..=4usize);
    let users = rng.gen_range(0..=5usize);
    let caps: Vec<f64> = (0..exts)
        .map(|_| match rng.gen_range(0..4u32) {
            0 => 0.0,
            1 => -rng.gen_range(0.0..50.0),
            _ => rng.gen_range(0.1..200.0),
        })
        .collect();
    let mut rates: Vec<Vec<f64>> = (0..users)
        .map(|_| {
            (0..exts)
                .map(|_| {
                    // Half the pairs unreachable, so all-unreachable
                    // users (and fully dark extenders) are common.
                    if rng.gen_range(0..2u32) == 0 {
                        0.0
                    } else {
                        rng.gen_range(0.0..50.0)
                    }
                })
                .collect()
        })
        .collect();
    if !rates.is_empty() && rng.gen_range(0..8u32) == 0 {
        rates[0].pop();
    }
    (caps, rates)
}

/// Robustness: the scenario → policy → evaluate pipeline never panics on
/// degenerate inputs. Malformed networks are rejected with a typed error
/// at construction; a network that does build may still defeat a policy
/// (an `Err` is acceptable), but nothing in the chain may panic.
#[test]
fn pipeline_is_panic_free_on_degenerate_inputs() {
    Runner::new("pipeline_is_panic_free_on_degenerate_inputs").run(
        degenerate_raw_inputs,
        |(caps, rates)| {
            let net = match Network::from_raw(caps.clone(), rates.clone()) {
                Ok(net) => net,
                Err(_) => return Ok(()),
            };
            let greedy = Greedy::new();
            let wolt = Wolt::new();
            for policy in [&wolt as &dyn AssociationPolicy, &greedy, &Rssi] {
                if let Ok(assoc) = policy.associate(&net) {
                    let _ = evaluate(&net, &assoc);
                }
            }
            Ok(())
        },
    );
}

/// Regression documenting a known limitation of Algorithm 1: Phase I
/// requires every extender to serve a user, so when only one user can
/// reach some extender, that user is conscripted even if it wastes a far
/// better link. The paper's relaxation (modification (b) of Problem 1)
/// assumes rich reachability; this instance shows what happens without it.
#[test]
fn wolt_limitation_forced_coverage() {
    let net = Network::from_raw(
        vec![142.0, 101.0, 20.0, 20.0],
        vec![
            vec![1.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0, 0.0],
            vec![47.0, 1.0, 1.0, 1.0], // the only user who reaches ext 3
            vec![1.0, 1.0, 1.0, 0.0],
        ],
    )
    .expect("valid network");
    let wolt = evaluate(&net, &Wolt::new().associate(&net).expect("runs"))
        .expect("valid")
        .aggregate
        .value();
    let optimal = evaluate(&net, &Optimal::new().associate(&net).expect("runs"))
        .expect("valid")
        .aggregate
        .value();
    // WOLT sacrifices user 2's 47 Mbit/s link to cover extender 3.
    assert!(
        wolt < 0.2 * optimal,
        "expected the documented gap: {wolt} vs {optimal}"
    );
}

/// Statistical near-optimality: across 40 seeded random instances WOLT's
/// mean aggregate reaches ≥ 90% of the brute-force optimum's mean, and at
/// least 80% of instances land within 70% of their optimum.
#[test]
fn wolt_is_near_optimal_on_average() {
    use wolt_support::rng::SeedableRng;
    let mut wolt_total = 0.0;
    let mut optimal_total = 0.0;
    let mut within_70 = 0usize;
    let trials = 40;
    for seed in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let exts = rng.gen_range(2..=4usize);
        let users = rng.gen_range(exts..=7usize);
        let caps: Vec<f64> = (0..exts).map(|_| rng.gen_range(20.0..200.0)).collect();
        let rates: Vec<Vec<f64>> = (0..users)
            .map(|_| (0..exts).map(|_| rng.gen_range(1.0..50.0)).collect())
            .collect();
        let net = Network::from_raw(caps, rates).expect("valid");
        let wolt = evaluate(&net, &Wolt::new().associate(&net).expect("runs"))
            .expect("valid")
            .aggregate
            .value();
        let optimal = evaluate(&net, &Optimal::new().associate(&net).expect("runs"))
            .expect("valid")
            .aggregate
            .value();
        wolt_total += wolt;
        optimal_total += optimal;
        if wolt >= 0.7 * optimal {
            within_70 += 1;
        }
    }
    assert!(
        wolt_total >= 0.9 * optimal_total,
        "mean WOLT {wolt_total} vs mean optimal {optimal_total}"
    );
    assert!(
        within_70 * 10 >= trials as usize * 8,
        "only {within_70}/{trials} instances within 70% of optimal"
    );
}

/// WOLT returns a complete, valid association on one network.
fn check_wolt_complete_and_valid(net: &Network) -> Result<(), String> {
    let assoc = Wolt::new().associate(net).expect("wolt runs");
    if !assoc.is_complete() {
        return Err("wolt left a user unassigned".into());
    }
    if let Err(e) = net.validate_association(&assoc) {
        return Err(format!("wolt association invalid: {e}"));
    }
    Ok(())
}

/// The brute-force optimum dominates every polynomial policy on one
/// network.
fn check_optimal_dominates(net: &Network) -> Result<(), String> {
    let optimal = evaluate(net, &Optimal::new().associate(net).expect("runs"))
        .expect("valid")
        .aggregate
        .value();
    let greedy = Greedy::new();
    let wolt = Wolt::new();
    for policy in [&wolt as &dyn AssociationPolicy, &greedy, &Rssi] {
        let v = evaluate(net, &policy.associate(net).expect("runs"))
            .expect("valid")
            .aggregate
            .value();
        if v > optimal + 1e-6 {
            return Err(format!("{} = {v} beat optimal = {optimal}", policy.name()));
        }
    }
    Ok(())
}

/// Redistribution never hurts a fixed association on one network.
fn check_redistribution_monotone(net: &Network) -> Result<(), String> {
    let assoc = Rssi.associate(net).expect("runs");
    let with = evaluate(net, &assoc).expect("valid").aggregate.value();
    let without = wolt_core::evaluate_without_redistribution(net, &assoc)
        .expect("valid")
        .aggregate
        .value();
    if with >= without - 1e-9 {
        Ok(())
    } else {
        Err(format!("{with} < {without}"))
    }
}

/// Phase-I structure invariants on one network.
fn check_phase1_structure(net: &Network) -> Result<(), String> {
    let outcome = wolt_core::phase1::run_phase1(net).expect("phase 1 runs");
    if outcome.selected_users.len() > net.extenders() {
        return Err("phase 1 selected more users than extenders".into());
    }
    for j in 0..net.extenders() {
        if outcome.association.users_of(j).len() > 1 {
            return Err(format!("phase 1 put two users on extender {j}"));
        }
    }
    // The relaxation's utility assumes *equal* airtime shares, so the
    // physical model (with redistribution) can exceed it — but never the
    // hard per-pair bound min(c_j, r_ij).
    let eval = evaluate(net, &outcome.association).expect("valid");
    let hard_bound: f64 = outcome
        .association
        .iter()
        .enumerate()
        .filter_map(|(i, t)| t.map(|j| (i, j)))
        .map(|(i, j)| {
            net.rate(i, j)
                .expect("reachable")
                .value()
                .min(net.capacity(j).value())
        })
        .sum();
    if eval.aggregate.value() > hard_bound + 1e-6 {
        return Err(format!(
            "physical {} above hard bound {hard_bound}",
            eval.aggregate
        ));
    }
    Ok(())
}

/// WOLT always returns a complete, valid association.
#[test]
fn wolt_always_complete_and_valid() {
    Runner::new("wolt_always_complete_and_valid").run(small_network, check_wolt_complete_and_valid);
}

/// The brute-force optimum dominates every polynomial policy.
#[test]
fn optimal_dominates_all_policies() {
    Runner::new("optimal_dominates_all_policies").run(small_network, check_optimal_dominates);
}

/// WOLT is never *wildly* suboptimal on fully reachable instances
/// with |U| ≥ |A| (the paper's setting). WOLT is a heuristic with no
/// worst-case guarantee, so the per-case bar is deliberately loose;
/// the statistical bar lives in `wolt_is_near_optimal_on_average`.
#[test]
fn wolt_within_constant_factor_of_optimal() {
    Runner::new("wolt_within_constant_factor_of_optimal").run(fully_reachable_network, |net| {
        check_wolt_within_factor(net, 0.35)
    });
}

fn check_wolt_within_factor(net: &Network, factor: f64) -> Result<(), String> {
    let optimal = evaluate(net, &Optimal::new().associate(net).expect("runs"))
        .expect("valid")
        .aggregate
        .value();
    let wolt = evaluate(net, &Wolt::new().associate(net).expect("runs"))
        .expect("valid")
        .aggregate
        .value();
    if wolt >= factor * optimal {
        Ok(())
    } else {
        Err(format!("wolt {wolt} vs optimal {optimal}"))
    }
}

/// Evaluation invariants: conservation and per-segment caps hold on
/// arbitrary complete associations.
#[test]
fn evaluation_invariants() {
    Runner::new("evaluation_invariants").run(
        |rng| (small_network(rng), rng.gen_range(0..10_000u64)),
        |(net, picker)| {
            // Derive a pseudo-random complete association from `picker`.
            let mut targets = Vec::with_capacity(net.users());
            let mut state = *picker;
            for i in 0..net.users() {
                let reachable = net.reachable_extenders(i);
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                targets.push(reachable[(state >> 33) as usize % reachable.len()]);
            }
            let assoc = Association::complete(targets);
            let eval = evaluate(net, &assoc).expect("valid association");

            let user_sum: f64 = eval.per_user.iter().map(|t| t.value()).sum();
            if (user_sum - eval.aggregate.value()).abs() >= 1e-6 {
                return Err("per-user sum != aggregate".into());
            }
            let share_sum: f64 = eval.plc_shares.iter().sum();
            if share_sum > 1.0 + 1e-9 {
                return Err(format!("PLC shares sum to {share_sum} > 1"));
            }
            for j in 0..net.extenders() {
                if eval.per_extender[j].value()
                    > net.capacity(j).value() * eval.plc_shares[j] + 1e-6
                {
                    return Err(format!("extender {j} exceeds its granted PLC share"));
                }
            }
            Ok(())
        },
    );
}

/// Redistribution can only help: the full model's aggregate is at
/// least the no-redistribution objective for the same association.
#[test]
fn redistribution_monotone() {
    Runner::new("redistribution_monotone").run(small_network, check_redistribution_monotone);
}

/// Policies are deterministic: same network, same answer.
#[test]
fn policies_are_deterministic() {
    Runner::new("policies_are_deterministic").run(small_network, |net| {
        let w1 = Wolt::new().associate(net).expect("runs");
        let w2 = Wolt::new().associate(net).expect("runs");
        if w1 != w2 {
            return Err("wolt is nondeterministic".into());
        }
        let g1 = Greedy::new().associate(net).expect("runs");
        let g2 = Greedy::new().associate(net).expect("runs");
        if g1 != g2 {
            return Err("greedy is nondeterministic".into());
        }
        Ok(())
    });
}

/// Phase I alone never assigns more users than extenders, and its
/// utility bound dominates the physical single-user throughput.
#[test]
fn phase1_structure() {
    Runner::new("phase1_structure").run(small_network, check_phase1_structure);
}

/// Runs every small-network invariant on one explicit instance.
fn assert_all_invariants(net: &Network) {
    check_wolt_complete_and_valid(net).expect("complete and valid");
    check_optimal_dominates(net).expect("optimal dominates");
    check_redistribution_monotone(net).expect("redistribution monotone");
    check_phase1_structure(net).expect("phase 1 structure");
}

// ---------------------------------------------------------------------------
// Saved proptest regressions (exact shrunk values from the retired
// `properties.proptest-regressions` corpus).
// ---------------------------------------------------------------------------

/// Shrunk case: one strong link next to a much larger capacity — an early
/// Phase-I tie-breaking failure.
#[test]
fn regression_strong_link_small_capacity() {
    let net = Network::from_raw(
        vec![20.0, 177.19761470204833],
        vec![vec![43.65787102951061, 1.0], vec![1.0, 1.0]],
    )
    .expect("valid network");
    assert_all_invariants(&net);
    check_wolt_within_factor(&net, 0.35).expect("within constant factor");
}

/// Shrunk case: extender 3 reachable by exactly one user (the exact
/// ancestor of `wolt_limitation_forced_coverage`).
#[test]
fn regression_forced_coverage_exact_values() {
    let net = Network::from_raw(
        vec![142.52439847076798, 101.70184562149888, 20.0, 20.0],
        vec![
            vec![1.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0, 0.0],
            vec![47.212232280963406, 1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0, 0.0],
        ],
    )
    .expect("valid network");
    assert_all_invariants(&net);
}

/// Shrunk case: fewer users than extenders, so Phase I cannot cover
/// every extender.
#[test]
fn regression_fewer_users_than_extenders() {
    let net = Network::from_raw(
        vec![
            99.17804805470061,
            71.88138937757529,
            67.69469821400483,
            20.0,
        ],
        vec![
            vec![1.0, 1.0, 28.131345989555417, 1.0],
            vec![18.234473759488914, 38.455977479898905, 1.0, 1.0],
        ],
    )
    .expect("valid network");
    assert_all_invariants(&net);
}

/// Shrunk case: seven users on three extenders with a handful of strong
/// outlier links.
#[test]
fn regression_many_users_sparse_strong_links() {
    let net = Network::from_raw(
        vec![149.70238667679428, 20.0, 20.0],
        vec![
            vec![1.0, 45.15367790391419, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 4.947310766762266],
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 47.501362809023014],
            vec![12.510883825551288, 1.0, 1.0],
        ],
    )
    .expect("valid network");
    assert_all_invariants(&net);
}
