//! Cross-crate property-based tests: algorithm invariants on random
//! networks.

use proptest::prelude::*;
use wolt_core::baselines::{Greedy, Optimal, Rssi};
use wolt_core::{evaluate, Association, AssociationPolicy, Network, Wolt};

/// Random small network: 2-4 extenders, 2-7 users, rates 1-50 Mbit/s with
/// some unreachable pairs, capacities 20-200 Mbit/s.
fn small_network() -> impl Strategy<Value = Network> {
    (2usize..=4, 2usize..=7)
        .prop_flat_map(|(exts, users)| {
            let caps = proptest::collection::vec(20.0f64..200.0, exts);
            let rates = proptest::collection::vec(
                proptest::collection::vec(
                    prop_oneof![3 => 1.0f64..50.0, 1 => Just(0.0)],
                    exts,
                ),
                users,
            );
            (caps, rates)
        })
        .prop_filter_map("every user must reach some extender", |(caps, mut rates)| {
            for row in &mut rates {
                if row.iter().all(|&r| r == 0.0) {
                    row[0] = 10.0;
                }
            }
            Network::from_raw(caps, rates).ok()
        })
}

/// Like [`small_network`], but every (user, extender) pair is reachable
/// and there are at least as many users as extenders (the paper's
/// enterprise setting; Phase I's `c_j/|A|` utility assumes all extenders
/// end up active, which needs `|U| ≥ |A|`).
fn fully_reachable_network() -> impl Strategy<Value = Network> {
    (2usize..=4)
        .prop_flat_map(|exts| (Just(exts), exts..=7))
        .prop_flat_map(|(exts, users)| {
            let caps = proptest::collection::vec(20.0f64..200.0, exts);
            let rates = proptest::collection::vec(
                proptest::collection::vec(1.0f64..50.0, exts),
                users,
            );
            (caps, rates)
        })
        .prop_map(|(caps, rates)| {
            Network::from_raw(caps, rates).expect("fully reachable networks are valid")
        })
}

/// Regression documenting a known limitation of Algorithm 1: Phase I
/// requires every extender to serve a user, so when only one user can
/// reach some extender, that user is conscripted even if it wastes a far
/// better link. The paper's relaxation (modification (b) of Problem 1)
/// assumes rich reachability; this instance shows what happens without it.
#[test]
fn wolt_limitation_forced_coverage() {
    let net = Network::from_raw(
        vec![142.0, 101.0, 20.0, 20.0],
        vec![
            vec![1.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0, 0.0],
            vec![47.0, 1.0, 1.0, 1.0], // the only user who reaches ext 3
            vec![1.0, 1.0, 1.0, 0.0],
        ],
    )
    .expect("valid network");
    let wolt = evaluate(&net, &Wolt::new().associate(&net).expect("runs"))
        .expect("valid")
        .aggregate
        .value();
    let optimal = evaluate(&net, &Optimal.associate(&net).expect("runs"))
        .expect("valid")
        .aggregate
        .value();
    // WOLT sacrifices user 2's 47 Mbit/s link to cover extender 3.
    assert!(wolt < 0.2 * optimal, "expected the documented gap: {wolt} vs {optimal}");
}

/// Statistical near-optimality: across 40 seeded random instances WOLT's
/// mean aggregate reaches ≥ 90% of the brute-force optimum's mean, and at
/// least 80% of instances land within 70% of their optimum.
#[test]
fn wolt_is_near_optimal_on_average() {
    use rand::{Rng, SeedableRng};
    let mut wolt_total = 0.0;
    let mut optimal_total = 0.0;
    let mut within_70 = 0usize;
    let trials = 40;
    for seed in 0..trials {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let exts = rng.gen_range(2..=4usize);
        let users = rng.gen_range(exts..=7usize);
        let caps: Vec<f64> = (0..exts).map(|_| rng.gen_range(20.0..200.0)).collect();
        let rates: Vec<Vec<f64>> = (0..users)
            .map(|_| (0..exts).map(|_| rng.gen_range(1.0..50.0)).collect())
            .collect();
        let net = Network::from_raw(caps, rates).expect("valid");
        let wolt = evaluate(&net, &Wolt::new().associate(&net).expect("runs"))
            .expect("valid")
            .aggregate
            .value();
        let optimal = evaluate(&net, &Optimal.associate(&net).expect("runs"))
            .expect("valid")
            .aggregate
            .value();
        wolt_total += wolt;
        optimal_total += optimal;
        if wolt >= 0.7 * optimal {
            within_70 += 1;
        }
    }
    assert!(
        wolt_total >= 0.9 * optimal_total,
        "mean WOLT {wolt_total} vs mean optimal {optimal_total}"
    );
    assert!(
        within_70 * 10 >= trials as usize * 8,
        "only {within_70}/{trials} instances within 70% of optimal"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// WOLT always returns a complete, valid association.
    #[test]
    fn wolt_always_complete_and_valid(net in small_network()) {
        let assoc = Wolt::new().associate(&net).expect("wolt runs");
        prop_assert!(assoc.is_complete());
        prop_assert!(net.validate_association(&assoc).is_ok());
    }

    /// The brute-force optimum dominates every polynomial policy.
    #[test]
    fn optimal_dominates_all_policies(net in small_network()) {
        let optimal = evaluate(&net, &Optimal.associate(&net).expect("runs"))
            .expect("valid").aggregate.value();
        let greedy = Greedy::new();
        let wolt = Wolt::new();
        for policy in [&wolt as &dyn AssociationPolicy, &greedy, &Rssi] {
            let v = evaluate(&net, &policy.associate(&net).expect("runs"))
                .expect("valid").aggregate.value();
            prop_assert!(v <= optimal + 1e-6,
                "{} = {v} beat optimal = {optimal}", policy.name());
        }
    }

    /// WOLT is never *wildly* suboptimal on fully reachable instances
    /// with |U| ≥ |A| (the paper's setting). WOLT is a heuristic with no
    /// worst-case guarantee, so the per-case bar is deliberately loose;
    /// the statistical bar lives in `wolt_is_near_optimal_on_average`.
    #[test]
    fn wolt_within_constant_factor_of_optimal(net in fully_reachable_network()) {
        let optimal = evaluate(&net, &Optimal.associate(&net).expect("runs"))
            .expect("valid").aggregate.value();
        let wolt = evaluate(&net, &Wolt::new().associate(&net).expect("runs"))
            .expect("valid").aggregate.value();
        prop_assert!(wolt >= 0.35 * optimal, "wolt {wolt} vs optimal {optimal}");
    }

    /// Evaluation invariants: conservation and per-segment caps hold on
    /// arbitrary complete associations.
    #[test]
    fn evaluation_invariants(net in small_network(), picker in 0u64..10_000) {
        // Derive a pseudo-random complete association from `picker`.
        let mut targets = Vec::with_capacity(net.users());
        let mut state = picker;
        for i in 0..net.users() {
            let reachable = net.reachable_extenders(i);
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            targets.push(reachable[(state >> 33) as usize % reachable.len()]);
        }
        let assoc = Association::complete(targets);
        let eval = evaluate(&net, &assoc).expect("valid association");

        let user_sum: f64 = eval.per_user.iter().map(|t| t.value()).sum();
        prop_assert!((user_sum - eval.aggregate.value()).abs() < 1e-6);
        let share_sum: f64 = eval.plc_shares.iter().sum();
        prop_assert!(share_sum <= 1.0 + 1e-9);
        for j in 0..net.extenders() {
            prop_assert!(eval.per_extender[j].value()
                <= net.capacity(j).value() * eval.plc_shares[j] + 1e-6);
        }
    }

    /// Redistribution can only help: the full model's aggregate is at
    /// least the no-redistribution objective for the same association.
    #[test]
    fn redistribution_monotone(net in small_network()) {
        let assoc = Rssi.associate(&net).expect("runs");
        let with = evaluate(&net, &assoc).expect("valid").aggregate.value();
        let without = wolt_core::evaluate_without_redistribution(&net, &assoc)
            .expect("valid").aggregate.value();
        prop_assert!(with >= without - 1e-9, "{with} < {without}");
    }

    /// Policies are deterministic: same network, same answer.
    #[test]
    fn policies_are_deterministic(net in small_network()) {
        let w1 = Wolt::new().associate(&net).expect("runs");
        let w2 = Wolt::new().associate(&net).expect("runs");
        prop_assert_eq!(w1, w2);
        let g1 = Greedy::new().associate(&net).expect("runs");
        let g2 = Greedy::new().associate(&net).expect("runs");
        prop_assert_eq!(g1, g2);
    }

    /// Phase I alone never assigns more users than extenders, and its
    /// utility bound dominates the physical single-user throughput.
    #[test]
    fn phase1_structure(net in small_network()) {
        let outcome = wolt_core::phase1::run_phase1(&net).expect("phase 1 runs");
        prop_assert!(outcome.selected_users.len() <= net.extenders());
        for j in 0..net.extenders() {
            prop_assert!(outcome.association.users_of(j).len() <= 1);
        }
        // The relaxation's utility assumes *equal* airtime shares, so the
        // physical model (with redistribution) can exceed it — but never
        // the hard per-pair bound min(c_j, r_ij).
        let eval = evaluate(&net, &outcome.association).expect("valid");
        let hard_bound: f64 = outcome
            .association
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|j| (i, j)))
            .map(|(i, j)| {
                net.rate(i, j).expect("reachable").value().min(net.capacity(j).value())
            })
            .sum();
        prop_assert!(eval.aggregate.value() <= hard_bound + 1e-6,
            "physical {} above hard bound {hard_bound}", eval.aggregate);
    }
}
