//! Executable checks of the paper's Lemma 2 and Theorem 2 on enumerable
//! instances.
//!
//! The *modified* Problem 1 (constraint (7) relaxed — users may stay
//! unassigned; constraint (8) tightened — every extender serves ≥ 1 user)
//! is small enough to brute-force at toy scale: every user picks an
//! extender or stays out, every extender must be covered, and the
//! objective is `Σ_j min(T_wifi(j), c_j/|A|)` with all `|A|` extenders
//! splitting the medium (the relaxation's premise). Lemma 2 says an
//! optimal solution exists with *exactly one user per extender*; Theorem 2
//! says that optimum equals the maximum-weight assignment under utilities
//! `u_ij = min(c_j/|A|, r_ij)`.

use wolt_core::phase1::run_phase1;
use wolt_core::Network;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::{Rng, SeedableRng};

/// Objective of the modified Problem 1 for a partial assignment
/// (`targets[i] = None` ⇒ user i unassigned). Returns `None` when some
/// extender is left uncovered (infeasible for the modified problem).
fn modified_objective(net: &Network, targets: &[Option<usize>]) -> Option<f64> {
    let a = net.extenders();
    let mut inv_sums = vec![0.0f64; a];
    let mut counts = vec![0usize; a];
    for (i, t) in targets.iter().enumerate() {
        if let Some(j) = *t {
            let rate = net.rate(i, j)?;
            inv_sums[j] += 1.0 / rate.value();
            counts[j] += 1;
        }
    }
    if counts.contains(&0) {
        return None;
    }
    Some(
        (0..a)
            .map(|j| {
                let t_wifi = counts[j] as f64 / inv_sums[j];
                let t_plc = net.capacity(j).value() / a as f64;
                t_wifi.min(t_plc)
            })
            .sum(),
    )
}

/// Enumerates all partial assignments of `users` users over `exts`
/// extenders (+ "unassigned") and returns the best modified objective,
/// overall and restricted to one-user-per-extender solutions.
fn brute_force_modified(net: &Network) -> (f64, f64) {
    let users = net.users();
    let exts = net.extenders();
    let choices = exts + 1; // extender j or unassigned
    let total = choices.pow(users as u32);
    let mut best_any = f64::NEG_INFINITY;
    let mut best_one_each = f64::NEG_INFINITY;
    for code in 0..total {
        let mut c = code;
        let targets: Vec<Option<usize>> = (0..users)
            .map(|_| {
                let pick = c % choices;
                c /= choices;
                (pick < exts).then_some(pick)
            })
            .collect();
        if let Some(obj) = modified_objective(net, &targets) {
            best_any = best_any.max(obj);
            let one_each =
                (0..exts).all(|j| targets.iter().filter(|t| **t == Some(j)).count() == 1);
            if one_each {
                best_one_each = best_one_each.max(obj);
            }
        }
    }
    (best_any, best_one_each)
}

fn random_network(rng: &mut ChaCha8Rng) -> Network {
    let exts = rng.gen_range(2..=3usize);
    let users = rng.gen_range(exts..=5usize);
    let caps: Vec<f64> = (0..exts).map(|_| rng.gen_range(20.0..200.0)).collect();
    let rates: Vec<Vec<f64>> = (0..users)
        .map(|_| (0..exts).map(|_| rng.gen_range(1.0..50.0)).collect())
        .collect();
    Network::from_raw(caps, rates).expect("fully reachable")
}

#[test]
fn lemma2_one_user_per_extender_is_optimal() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for trial in 0..30 {
        let net = random_network(&mut rng);
        let (best_any, best_one_each) = brute_force_modified(&net);
        assert!(
            (best_any - best_one_each).abs() < 1e-9,
            "trial {trial}: some multi-user solution beats every matching: \
             {best_any} vs {best_one_each}"
        );
    }
}

#[test]
fn theorem2_hungarian_attains_the_modified_optimum() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for trial in 0..30 {
        let net = random_network(&mut rng);
        let (best_any, _) = brute_force_modified(&net);
        let phase1 = run_phase1(&net).expect("phase 1 runs");
        assert!(
            (phase1.utility_total - best_any).abs() < 1e-9,
            "trial {trial}: assignment total {} != modified optimum {best_any}",
            phase1.utility_total
        );
    }
}

#[test]
fn lemma2_fig3_witness() {
    // On the case study the modified optimum is 40 (the Fig. 3d pairing),
    // achieved by a perfect matching.
    let net = Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]])
        .expect("valid");
    let (best_any, best_one_each) = brute_force_modified(&net);
    assert!((best_any - 40.0).abs() < 1e-9);
    assert!((best_one_each - 40.0).abs() < 1e-9);
}

#[test]
fn adding_a_second_user_to_a_cell_never_helps_the_modified_objective() {
    // The disconnection argument behind Lemma 2, checked directly: start
    // from the optimal matching and add each leftover user to each
    // extender; the modified objective must not increase.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for _ in 0..20 {
        let net = random_network(&mut rng);
        let phase1 = run_phase1(&net).expect("phase 1 runs");
        let base: Vec<Option<usize>> = (0..net.users())
            .map(|i| phase1.association.target(i))
            .collect();
        let base_obj = modified_objective(&net, &base).expect("matching covers all extenders");
        for i in phase1.association.unassigned_users() {
            for j in 0..net.extenders() {
                let mut candidate = base.clone();
                candidate[i] = Some(j);
                let obj = modified_objective(&net, &candidate).expect("still covers all extenders");
                assert!(
                    obj <= base_obj + 1e-9,
                    "adding user {i} to extender {j} raised the modified \
                     objective: {base_obj} -> {obj}"
                );
            }
        }
    }
}
