//! Integration: the resilient Central Controller under seeded fault
//! injection (lossy links, crashed and wedged agents).
//!
//! These tests pin the PR's acceptance criteria: a lossy session with a
//! crashed agent still terminates within its deadline budget with every
//! survivor associated and near-fault-free throughput, and the canonical
//! session report is byte-identical across thread counts and repeated
//! runs for a fixed (scenario, seed, fault plan).

use std::time::{Duration, Instant};

use wolt_testbed::{
    run_faulty_session, ControllerPolicy, Deadlines, FaultPlan, LinkFaults, RigConfig,
    SessionEvent, SessionReport,
};
use wolt_tests::lab_scenario;

/// The acceptance fault plan: 20% drop both ways, some duplication,
/// delayed acks (well below the ack retry budget), one crashed agent.
fn lossy_plan() -> FaultPlan {
    FaultPlan {
        seed: 7,
        to_cc: LinkFaults {
            drop: 0.2,
            duplicate: 0.1,
            max_delay: Duration::from_millis(10),
        },
        to_client: LinkFaults {
            drop: 0.2,
            duplicate: 0.1,
            max_delay: Duration::from_millis(10),
        },
        crashed: vec![3],
        wedged: vec![],
    }
}

fn all_join(users: usize) -> Vec<SessionEvent> {
    (0..users).map(SessionEvent::Join).collect()
}

fn lossy_report() -> SessionReport {
    run_faulty_session(
        &lab_scenario(7, 42),
        &RigConfig::new(ControllerPolicy::Wolt),
        &all_join(7),
        0,
        &lossy_plan(),
    )
    .expect("lossy session completes")
}

#[test]
fn lossy_session_with_crash_meets_acceptance_bar() {
    let start = Instant::now();
    let report = lossy_report();
    let elapsed = start.elapsed();

    // Terminates within the deadline budget, not a hang: 7 events at 2 s
    // each plus retry slack is far under this bound.
    assert!(
        elapsed < Duration::from_secs(30),
        "session took {elapsed:?}"
    );

    // The crash is accounted for and masked.
    assert_eq!(report.crashed, vec![3]);
    assert!(!report.survivors.contains(&3));
    assert_eq!(report.outcome.association.target(3), None);

    // Every surviving user ends the session associated.
    for &i in &report.survivors {
        assert!(
            report.outcome.association.target(i).is_some(),
            "survivor {i} left unassociated"
        );
    }

    // ≥ 90% of the fault-free aggregate over the same survivor set: the
    // reference plan crashes the same agent but loses no messages, so the
    // ratio isolates what message loss/delay/duplication cost.
    let reference = run_faulty_session(
        &lab_scenario(7, 42),
        &RigConfig::new(ControllerPolicy::Wolt),
        &all_join(7),
        0,
        &FaultPlan {
            crashed: vec![3],
            ..FaultPlan::none()
        },
    )
    .expect("reference session completes");
    assert_eq!(reference.survivors, report.survivors);
    assert!(
        report.outcome.aggregate >= 0.9 * reference.outcome.aggregate,
        "lossy aggregate {} below 90% of fault-free {}",
        report.outcome.aggregate,
        reference.outcome.aggregate
    );
}

#[test]
fn canonical_report_is_thread_count_invariant() {
    // The rig never consults the worker pool, and fault decisions are
    // keyed by message identity rather than drawn from a shared stream —
    // so WOLT_THREADS must not leak into the session outcome. This pins
    // that invariant as a regression guard.
    let baseline = lossy_report().canonical();
    let original = std::env::var("WOLT_THREADS").ok();
    for threads in ["1", "2", "8"] {
        std::env::set_var("WOLT_THREADS", threads);
        let got = lossy_report().canonical();
        assert_eq!(
            got, baseline,
            "canonical report diverged at WOLT_THREADS={threads}"
        );
    }
    match original {
        Some(v) => std::env::set_var("WOLT_THREADS", v),
        None => std::env::remove_var("WOLT_THREADS"),
    }
}

#[test]
fn repeated_lossy_sessions_are_byte_identical() {
    let a = lossy_report();
    let b = lossy_report();
    assert_eq!(a.canonical(), b.canonical());
    // The full reports (retries included) agree on everything canonical.
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.survivors, b.survivors);
    assert_eq!(a.declared_dead, b.declared_dead);
    assert_eq!(a.degraded_solves, b.degraded_solves);
}

#[test]
fn duplicate_heavy_plan_matches_fault_free_outcome() {
    // Duplication alone must be invisible: the CC dedups reports by epoch
    // and directives/acks by sequence number, so the outcome equals the
    // fault-free session's outcome exactly.
    let scenario = lab_scenario(7, 5);
    let config = RigConfig::new(ControllerPolicy::Wolt);
    let events = all_join(7);
    let plan = FaultPlan {
        seed: 11,
        to_cc: LinkFaults {
            drop: 0.0,
            duplicate: 0.8,
            max_delay: Duration::ZERO,
        },
        to_client: LinkFaults {
            drop: 0.0,
            duplicate: 0.8,
            max_delay: Duration::ZERO,
        },
        crashed: vec![],
        wedged: vec![],
    };
    let faulty = run_faulty_session(&scenario, &config, &events, 0, &plan).expect("runs");
    let clean =
        run_faulty_session(&scenario, &config, &events, 0, &FaultPlan::none()).expect("runs");
    assert_eq!(faulty.outcome, clean.outcome);
    assert!(faulty.declared_dead.is_empty());
    assert_eq!(faulty.degraded_solves, 0);
}

#[test]
fn wedged_agent_is_declared_dead_and_survivors_recover() {
    // A wedged agent keeps reporting but never acks a directive: once the
    // CC directs it, the ack retry budget expires and the client is
    // declared dead; the survivors are then re-optimized. Short ack
    // deadlines keep the test fast without touching the decision logic.
    let config = RigConfig {
        deadlines: Deadlines {
            ack: Duration::from_millis(5),
            ack_attempts: 4,
            ack_backoff_cap: Duration::from_millis(20),
            ..Deadlines::default()
        },
        ..RigConfig::new(ControllerPolicy::Wolt)
    };
    // Seed chosen so WOLT moves the wedged client off its RSSI default
    // (i.e. actually sends it a directive).
    let report = run_faulty_session(
        &lab_scenario(7, 42),
        &config,
        &all_join(7),
        0,
        &FaultPlan {
            wedged: vec![1],
            ..FaultPlan::none()
        },
    )
    .expect("session completes");
    assert_eq!(report.wedged, vec![1]);
    assert!(
        report.declared_dead.contains(&1),
        "wedged client never declared dead: {report:?}"
    );
    assert!(!report.survivors.contains(&1));
    assert_eq!(report.outcome.association.target(1), None);
    for &i in &report.survivors {
        assert!(
            report.outcome.association.target(i).is_some(),
            "survivor {i} stranded after dead declaration"
        );
    }
    assert!(report.outcome.aggregate > 0.0);
    assert!(report.retries > 0, "dead declaration implies retries");
}
