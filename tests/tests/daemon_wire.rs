//! Property tests for the daemon wire format: every protocol message
//! variant must survive a serialize → frame → parse round trip
//! byte-for-byte, including hostile strings (control characters,
//! escape-sequence look-alikes, non-ASCII) in the envelope's free-form
//! fields.

use wolt_daemon::{wire, Envelope};
use wolt_support::check::Runner;
use wolt_support::rng::Rng;
use wolt_testbed::protocol::{ToAgent, ToClient, ToController};
use wolt_units::Mbps;

/// Characters chosen to stress the JSON string escaper: every class of
/// mandatory escape, multi-byte UTF-8 up to astral planes, and literal
/// text that *looks* like an escape sequence.
const NASTY_CHARS: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1}', '\u{7}', '\u{b}',
    '\u{c}', '\u{1f}', '\u{7f}', 'é', 'ß', '←', '語', '\u{7ff}', '\u{fffd}', '🦀', '𝕎',
];

fn nasty_string(rng: &mut impl Rng) -> String {
    let len = rng.gen_range(0..24usize);
    let mut s = String::new();
    for _ in 0..len {
        if rng.gen_range(0..8usize) == 0 {
            // Escape-sequence look-alikes must come through literally.
            s.push_str(["\\u0041", "\\n", "\\\"", "\\u{1f}"][rng.gen_range(0..4usize)]);
        } else {
            s.push(NASTY_CHARS[rng.gen_range(0..NASTY_CHARS.len())]);
        }
    }
    s
}

fn rates(rng: &mut impl Rng) -> Vec<Option<Mbps>> {
    let n = rng.gen_range(0..5usize);
    (0..n)
        .map(|_| {
            if rng.gen_range(0..4usize) == 0 {
                None
            } else {
                // Awkward mantissas exercise shortest-round-trip floats.
                Some(Mbps::new(rng.gen_range(0.0..200.0f64) / 3.0))
            }
        })
        .collect()
}

fn arbitrary_envelope(rng: &mut impl Rng) -> Envelope {
    match rng.gen_range(0..10u32) {
        0 => Envelope::Hello {
            client: rng.gen_range(0..64usize),
            name: nasty_string(rng),
        },
        1 => Envelope::HelloAck {
            attached: if rng.gen_range(0..2u32) == 0 {
                None
            } else {
                Some(rng.gen_range(0..8usize))
            },
        },
        2 => Envelope::Ctrl(ToController::Report {
            client: rng.gen_range(0..64usize),
            epoch: rng.gen_range(0..1_000_000u64),
            rates: rates(rng),
            attached: rng.gen_range(0..8usize),
        }),
        3 => Envelope::Ctrl(ToController::Ack {
            client: rng.gen_range(0..64usize),
            seq: rng.gen_range(0..u64::MAX / 2),
            extender: rng.gen_range(0..8usize),
        }),
        4 => Envelope::Ctrl(ToController::Departed {
            client: rng.gen_range(0..64usize),
            epoch: rng.gen_range(0..1_000_000u64),
        }),
        5 => Envelope::Client(ToClient::Directive {
            extender: rng.gen_range(0..8usize),
            seq: rng.gen_range(0..u64::MAX / 2),
            attempt: rng.gen_range(0..100u32),
        }),
        6 => Envelope::Client(ToClient::Shutdown),
        7 => Envelope::Agent(ToAgent::Join {
            epoch: rng.gen_range(0..1_000_000u64),
            attempt: rng.gen_range(1..10u32),
        }),
        8 => Envelope::Agent(ToAgent::Leave {
            epoch: rng.gen_range(0..1_000_000u64),
            attempt: rng.gen_range(1..10u32),
        }),
        _ => Envelope::Shutdown {
            reason: nasty_string(rng),
        },
    }
}

#[test]
fn every_envelope_round_trips_byte_identically() {
    Runner::new("daemon_envelope_round_trip")
        .cases(400)
        .run(arbitrary_envelope, |env| {
            let mut frame = Vec::new();
            wire::send(&mut frame, env).map_err(|e| format!("send failed: {e}"))?;
            let mut r = frame.as_slice();
            let back = wire::recv(&mut r)
                .map_err(|e| format!("recv failed: {e}"))?
                .ok_or("frame produced no envelope")?;
            if &back != env {
                return Err(format!("decoded {back:?} != original"));
            }
            if !r.is_empty() {
                return Err(format!("{} trailing bytes after one frame", r.len()));
            }
            // Determinism: re-encoding the decoded value reproduces the
            // exact wire bytes.
            let mut again = Vec::new();
            wire::send(&mut again, &back).map_err(|e| format!("re-send failed: {e}"))?;
            if again != frame {
                return Err("re-encoded frame differs from the original bytes".into());
            }
            Ok(())
        });
}

#[test]
fn streamed_envelopes_preserve_order_and_boundaries() {
    Runner::new("daemon_envelope_streaming").cases(60).run(
        |rng| {
            let n = rng.gen_range(1..12usize);
            (0..n).map(|_| arbitrary_envelope(rng)).collect::<Vec<_>>()
        },
        |envs| {
            let mut buf = Vec::new();
            for e in envs {
                wire::send(&mut buf, e).map_err(|e| format!("send failed: {e}"))?;
            }
            let mut r = buf.as_slice();
            for (i, expected) in envs.iter().enumerate() {
                let got = wire::recv(&mut r)
                    .map_err(|e| format!("recv {i} failed: {e}"))?
                    .ok_or_else(|| format!("stream ended early at {i}"))?;
                if &got != expected {
                    return Err(format!("envelope {i} mutated in transit"));
                }
            }
            match wire::recv(&mut r) {
                Ok(None) => Ok(()),
                other => Err(format!("expected clean EOF, got {other:?}")),
            }
        },
    );
}
