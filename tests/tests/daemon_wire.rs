//! Property tests for the daemon wire format: every protocol message
//! variant must survive a serialize → frame → parse round trip
//! byte-for-byte, including hostile strings (control characters,
//! escape-sequence look-alikes, non-ASCII) in the envelope's free-form
//! fields.

use std::io;

use wolt_daemon::{wire, Envelope};
use wolt_support::check::Runner;
use wolt_support::json::Json;
use wolt_support::obs::{HistogramSnapshot, ObsSnapshot};
use wolt_support::rng::Rng;
use wolt_testbed::codec::{write_frame, MAX_FRAME_BYTES};
use wolt_testbed::protocol::{ToAgent, ToClient, ToController};
use wolt_units::Mbps;

/// Characters chosen to stress the JSON string escaper: every class of
/// mandatory escape, multi-byte UTF-8 up to astral planes, and literal
/// text that *looks* like an escape sequence.
const NASTY_CHARS: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1}', '\u{7}', '\u{b}',
    '\u{c}', '\u{1f}', '\u{7f}', 'é', 'ß', '←', '語', '\u{7ff}', '\u{fffd}', '🦀', '𝕎',
];

fn nasty_string(rng: &mut impl Rng) -> String {
    let len = rng.gen_range(0..24usize);
    let mut s = String::new();
    for _ in 0..len {
        if rng.gen_range(0..8usize) == 0 {
            // Escape-sequence look-alikes must come through literally.
            s.push_str(["\\u0041", "\\n", "\\\"", "\\u{1f}"][rng.gen_range(0..4usize)]);
        } else {
            s.push(NASTY_CHARS[rng.gen_range(0..NASTY_CHARS.len())]);
        }
    }
    s
}

fn rates(rng: &mut impl Rng) -> Vec<Option<Mbps>> {
    let n = rng.gen_range(0..5usize);
    (0..n)
        .map(|_| {
            if rng.gen_range(0..4usize) == 0 {
                None
            } else {
                // Awkward mantissas exercise shortest-round-trip floats.
                Some(Mbps::new(rng.gen_range(0.0..200.0f64) / 3.0))
            }
        })
        .collect()
}

/// Metric names stress the JSON object-key escaper the same way the
/// free-form fields stress string bodies.
fn metric_name(rng: &mut impl Rng) -> String {
    if rng.gen_range(0..3u32) == 0 {
        nasty_string(rng)
    } else {
        format!("daemon.metric_{}", rng.gen_range(0..32u32))
    }
}

fn arbitrary_snapshot(rng: &mut impl Rng) -> ObsSnapshot {
    let mut snap = ObsSnapshot::default();
    for _ in 0..rng.gen_range(0..5usize) {
        snap.counters
            .insert(metric_name(rng), rng.gen_range(0..u64::MAX / 2));
    }
    for _ in 0..rng.gen_range(0..4usize) {
        let magnitude = rng.gen_range(0..1_000_000u64) as i64;
        let value = if rng.gen_range(0..2u32) == 0 {
            -magnitude
        } else {
            magnitude
        };
        snap.gauges.insert(metric_name(rng), value);
    }
    for _ in 0..rng.gen_range(0..3usize) {
        let n_bounds = rng.gen_range(1..6usize);
        let mut bounds = Vec::with_capacity(n_bounds);
        let mut edge = 0u64;
        for _ in 0..n_bounds {
            edge += rng.gen_range(1..1_000u64);
            bounds.push(edge);
        }
        let counts: Vec<u64> = (0..=n_bounds).map(|_| rng.gen_range(0..50u64)).collect();
        let count = counts.iter().sum();
        snap.histograms.insert(
            metric_name(rng),
            HistogramSnapshot {
                bounds,
                counts,
                count,
                sum: rng.gen_range(0..u64::MAX / 2),
                max: rng.gen_range(0..u64::MAX / 2),
            },
        );
    }
    snap
}

fn arbitrary_envelope(rng: &mut impl Rng) -> Envelope {
    match rng.gen_range(0..12u32) {
        0 => Envelope::Hello {
            client: rng.gen_range(0..64usize),
            name: nasty_string(rng),
            site: if rng.gen_range(0..2u32) == 0 {
                None
            } else {
                Some(nasty_string(rng))
            },
        },
        1 => Envelope::HelloAck {
            attached: if rng.gen_range(0..2u32) == 0 {
                None
            } else {
                Some(rng.gen_range(0..8usize))
            },
        },
        2 => Envelope::Ctrl(ToController::Report {
            client: rng.gen_range(0..64usize),
            epoch: rng.gen_range(0..1_000_000u64),
            rates: rates(rng),
            attached: rng.gen_range(0..8usize),
        }),
        3 => Envelope::Ctrl(ToController::Ack {
            client: rng.gen_range(0..64usize),
            seq: rng.gen_range(0..u64::MAX / 2),
            extender: rng.gen_range(0..8usize),
        }),
        4 => Envelope::Ctrl(ToController::Departed {
            client: rng.gen_range(0..64usize),
            epoch: rng.gen_range(0..1_000_000u64),
        }),
        5 => Envelope::Client(ToClient::Directive {
            extender: rng.gen_range(0..8usize),
            seq: rng.gen_range(0..u64::MAX / 2),
            attempt: rng.gen_range(0..100u32),
        }),
        6 => Envelope::Client(ToClient::Shutdown),
        7 => Envelope::Agent(ToAgent::Join {
            epoch: rng.gen_range(0..1_000_000u64),
            attempt: rng.gen_range(1..10u32),
        }),
        8 => Envelope::Agent(ToAgent::Leave {
            epoch: rng.gen_range(0..1_000_000u64),
            attempt: rng.gen_range(1..10u32),
        }),
        9 => Envelope::Shutdown {
            reason: nasty_string(rng),
        },
        10 => Envelope::MetricsRequest,
        _ => Envelope::Metrics {
            metrics: arbitrary_snapshot(rng),
        },
    }
}

#[test]
fn every_envelope_round_trips_byte_identically() {
    Runner::new("daemon_envelope_round_trip")
        .cases(400)
        .run(arbitrary_envelope, |env| {
            let mut frame = Vec::new();
            wire::send(&mut frame, env).map_err(|e| format!("send failed: {e}"))?;
            let mut r = frame.as_slice();
            let back = wire::recv(&mut r)
                .map_err(|e| format!("recv failed: {e}"))?
                .ok_or("frame produced no envelope")?;
            if &back != env {
                return Err(format!("decoded {back:?} != original"));
            }
            if !r.is_empty() {
                return Err(format!("{} trailing bytes after one frame", r.len()));
            }
            // Determinism: re-encoding the decoded value reproduces the
            // exact wire bytes.
            let mut again = Vec::new();
            wire::send(&mut again, &back).map_err(|e| format!("re-send failed: {e}"))?;
            if again != frame {
                return Err("re-encoded frame differs from the original bytes".into());
            }
            Ok(())
        });
}

#[test]
fn streamed_envelopes_preserve_order_and_boundaries() {
    Runner::new("daemon_envelope_streaming").cases(60).run(
        |rng| {
            let n = rng.gen_range(1..12usize);
            (0..n).map(|_| arbitrary_envelope(rng)).collect::<Vec<_>>()
        },
        |envs| {
            let mut buf = Vec::new();
            for e in envs {
                wire::send(&mut buf, e).map_err(|e| format!("send failed: {e}"))?;
            }
            let mut r = buf.as_slice();
            for (i, expected) in envs.iter().enumerate() {
                let got = wire::recv(&mut r)
                    .map_err(|e| format!("recv {i} failed: {e}"))?
                    .ok_or_else(|| format!("stream ended early at {i}"))?;
                if &got != expected {
                    return Err(format!("envelope {i} mutated in transit"));
                }
            }
            match wire::recv(&mut r) {
                Ok(None) => Ok(()),
                other => Err(format!("expected clean EOF, got {other:?}")),
            }
        },
    );
}

#[test]
fn metrics_envelopes_round_trip_byte_identically() {
    // A focused run over metrics payloads only: deep nested snapshots
    // with hostile metric names get far more coverage than their 2-in-12
    // share of the general envelope property.
    Runner::new("daemon_metrics_round_trip").cases(200).run(
        |rng| Envelope::Metrics {
            metrics: arbitrary_snapshot(rng),
        },
        |env| {
            let mut frame = Vec::new();
            wire::send(&mut frame, env).map_err(|e| format!("send failed: {e}"))?;
            let mut r = frame.as_slice();
            let back = wire::recv(&mut r)
                .map_err(|e| format!("recv failed: {e}"))?
                .ok_or("frame produced no envelope")?;
            if &back != env {
                return Err(format!("decoded {back:?} != original"));
            }
            let mut again = Vec::new();
            wire::send(&mut again, &back).map_err(|e| format!("re-send failed: {e}"))?;
            if again != frame {
                return Err("re-encoded frame differs from the original bytes".into());
            }
            Ok(())
        },
    );
}

#[test]
fn truncated_metrics_frames_are_unexpected_eof() {
    let mut metrics = ObsSnapshot::default();
    metrics.counters.insert("daemon.frames_in".into(), 42);
    metrics.histograms.insert(
        "daemon.resolve_us".into(),
        HistogramSnapshot {
            bounds: vec![100, 1_000],
            counts: vec![1, 2, 0],
            count: 3,
            sum: 500,
            max: 400,
        },
    );
    let mut buf = Vec::new();
    wire::send(&mut buf, &Envelope::Metrics { metrics }).unwrap();
    // Every strict prefix of the frame must fail with UnexpectedEof —
    // never a panic, never a bogus decoded envelope.
    for cut in [1, 2, 3, 4, 5, buf.len() / 2, buf.len() - 1] {
        let mut r = &buf[..cut];
        assert_eq!(
            wire::recv(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof,
            "prefix of {cut} bytes"
        );
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocating() {
    // A hostile peer claims a frame just past the cap. The reader must
    // refuse on the prefix alone — it never tries to allocate or read
    // the claimed body (there are only 4 bytes here to read anyway).
    let giant = u32::try_from(MAX_FRAME_BYTES + 1).unwrap().to_be_bytes();
    let mut r = giant.as_slice();
    let err = wire::recv(&mut r).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("exceeds"),
        "cap rejection should name the cap, got: {err}"
    );
    // u32::MAX, the worst case a 4-byte prefix can claim.
    let mut r: &[u8] = &[0xff; 4];
    assert_eq!(
        wire::recv(&mut r).unwrap_err().kind(),
        io::ErrorKind::InvalidData
    );
}

#[test]
fn unknown_envelope_kinds_are_typed_errors() {
    for tag in ["metrics_v2", "Metrics", "METRICS", "", "metrics "] {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj([("t", Json::Str(tag.into()))])).unwrap();
        let mut r = buf.as_slice();
        let err = wire::recv(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "tag {tag:?}");
        assert!(err.to_string().contains("bad envelope"), "tag {tag:?}");
    }
    // A metrics reply whose payload is structurally wrong (counts array
    // length disagrees with bounds) must be rejected, not silently
    // mis-parsed.
    let bad = Json::parse(
        r#"{"t":"metrics_reply","m":{"counters":{},"gauges":{},"histograms":{"h":{"bounds":[10],"counts":[1],"count":1,"sum":1,"max":1}}}}"#,
    )
    .unwrap();
    let mut buf = Vec::new();
    write_frame(&mut buf, &bad).unwrap();
    let mut r = buf.as_slice();
    assert_eq!(
        wire::recv(&mut r).unwrap_err().kind(),
        io::ErrorKind::InvalidData
    );
}
