//! Properties of the daemon's drained-batch telemetry coalescing: the
//! structural batch drain never reorders lifecycle messages, coalescing
//! is a per-client last-writer-wins filter, and a frame is accounted
//! exactly once — shed by the inbox, dropped as a stale burst copy, or
//! delivered — never twice.

use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

use wolt_daemon::{inbox, run_agent_burst, AgentRetry, Daemon, DaemonConfig};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::{ChaCha8Rng, Rng, SeedableRng};
use wolt_testbed::{coalesce_frames, ControllerPolicy, ReportFrame, SessionEvent};
use wolt_units::Mbps;

/// A model of the session inbox traffic: telemetry (batchable and
/// sheddable) interleaved with lifecycle messages (neither).
#[derive(Debug, Clone, PartialEq)]
enum Msg {
    Report(ReportFrame),
    Lifecycle(u64),
}

fn batchable(m: &Msg) -> bool {
    matches!(m, Msg::Report(_))
}

/// A report whose epoch doubles as a process-unique identity, so the
/// accounting below can partition frames by fate.
fn frame(id: u64, client: usize) -> ReportFrame {
    ReportFrame {
        client,
        epoch: id,
        rates: vec![Some(Mbps::new(10.0 + client as f64))],
        attached: 0,
    }
}

/// Seeded random traffic: mostly reports over `clients`, with lifecycle
/// markers sprinkled in at probability `p_lifecycle`.
fn traffic(rng: &mut ChaCha8Rng, len: usize, clients: usize, p_lifecycle: f64) -> Vec<Msg> {
    (0..len as u64)
        .map(|id| {
            if rng.gen_bool(p_lifecycle) {
                Msg::Lifecycle(id)
            } else {
                Msg::Report(frame(id, rng.gen_range(0..clients)))
            }
        })
        .collect()
}

/// Runs one loopback session with every agent re-sending each report
/// `burst` times, and returns the canonical report.
fn burst_session(coalesce: bool, burst: u32) -> String {
    let cfg = ScenarioConfig::lab(7);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let scenario = Scenario::generate(&cfg, &mut rng).unwrap();
    let events: Vec<SessionEvent> = (0..7).map(SessionEvent::Join).collect();
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = 7;
    config.coalesce = coalesce;
    let daemon = Daemon::bind("127.0.0.1:0", scenario.clone(), events, config).unwrap();
    let addr: SocketAddr = daemon.local_addr().unwrap();
    let agents: Vec<_> = (0..7)
        .map(|i| {
            let scenario = scenario.clone();
            thread::spawn(move || {
                run_agent_burst(
                    addr,
                    &scenario,
                    None,
                    i,
                    &format!("burst-{i}"),
                    &AgentRetry::default(),
                    burst,
                )
            })
        })
        .collect();
    let outcome = daemon.run().unwrap();
    for handle in agents {
        handle.join().unwrap().unwrap();
    }
    assert!(outcome.completed);
    outcome.report.canonical()
}

#[test]
fn burst_sessions_converge_identically_with_coalescing_on_or_off() {
    // Agents re-send every scan report 4x: the coalescer (on) and the
    // watermark dedup (off) must both absorb the copies into the same
    // canonical session — which is also what a burst-free run produces.
    let clean = burst_session(true, 1);
    let coalesced = burst_session(true, 4);
    let deduped = burst_session(false, 4);
    assert_eq!(coalesced, clean);
    assert_eq!(deduped, clean);
}

#[test]
fn coalesce_is_a_per_client_last_writer_wins_filter() {
    for seed in 0..32u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let len = rng.gen_range(1usize..=40);
        let clients = rng.gen_range(1usize..=5);
        let frames: Vec<ReportFrame> = (0..len as u64)
            .map(|id| frame(id, rng.gen_range(0..clients)))
            .collect();

        let (kept, dropped) = coalesce_frames(frames.clone());
        assert_eq!(kept.len() + dropped, frames.len(), "seed {seed}");

        // Model: keep each client's last arrival, in arrival order of
        // those survivors.
        let mut expected: Vec<ReportFrame> = Vec::new();
        for f in &frames {
            expected.retain(|e| e.client != f.client);
            expected.push(f.clone());
        }
        expected.sort_by_key(|f| f.epoch);
        let mut kept_sorted = kept.clone();
        kept_sorted.sort_by_key(|f| f.epoch);
        assert_eq!(kept_sorted, expected, "seed {seed}: wrong survivors");
        // Survivor arrival order is preserved: epochs (= arrival ids)
        // must already be increasing without the sort.
        assert!(
            kept.windows(2).all(|w| w[0].epoch < w[1].epoch),
            "seed {seed}: survivors reordered"
        );
    }
}

#[test]
fn drained_batches_preserve_lifecycle_order_exactly() {
    for seed in 0..16u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0xBA7C4 ^ seed);
        let msgs = traffic(&mut rng, 60, 3, 0.25);

        // Unbounded inbox: no shedding, pure drain-order semantics.
        let (tx, rx) = inbox::channel::<Msg>(0, batchable);
        for m in &msgs {
            assert!(!tx.send(m.clone()).unwrap());
        }

        let mut drains: Vec<Vec<Msg>> = Vec::new();
        while let Ok(batch) = rx.recv_batch_timeout(Duration::ZERO, batchable) {
            drains.push(batch);
        }

        // The flattened drains are the exact send order: batching never
        // reorders, drops, or duplicates anything.
        let flat: Vec<Msg> = drains.iter().flatten().cloned().collect();
        assert_eq!(flat, msgs, "seed {seed}");
        // Every batch is either one run of reports or a single
        // lifecycle message — lifecycle never rides inside a batch.
        for batch in &drains {
            assert!(
                batch.iter().all(batchable) || batch.len() == 1,
                "seed {seed}: lifecycle inside a batch: {batch:?}"
            );
        }
    }
}

#[test]
fn shed_coalesced_and_delivered_partition_every_frame() {
    for seed in 0..16u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(0x5EDC0 ^ seed);
        let cap = rng.gen_range(2usize..=6);
        let msgs = traffic(&mut rng, 80, 4, 0.15);

        let (tx, rx) = inbox::channel::<Msg>(cap, batchable);
        let mut shed_count = 0usize;
        for m in &msgs {
            if tx.send(m.clone()).unwrap() {
                shed_count += 1;
            }
        }

        // Drain everything, coalescing each report run as the engine
        // does; lifecycle messages arrive as singleton batches.
        let mut delivered_ids: Vec<u64> = Vec::new();
        let mut lifecycle_ids: Vec<u64> = Vec::new();
        let mut coalesced_count = 0usize;
        while let Ok(batch) = rx.recv_batch_timeout(Duration::ZERO, batchable) {
            match &batch[0] {
                Msg::Lifecycle(id) => {
                    assert_eq!(batch.len(), 1, "seed {seed}");
                    lifecycle_ids.push(*id);
                }
                Msg::Report(_) => {
                    let frames: Vec<ReportFrame> = batch
                        .into_iter()
                        .map(|m| match m {
                            Msg::Report(f) => f,
                            Msg::Lifecycle(_) => unreachable!("mixed batch"),
                        })
                        .collect();
                    let batch_ids: Vec<u64> = frames.iter().map(|f| f.epoch).collect();
                    let (kept, dropped) = coalesce_frames(frames);
                    coalesced_count += dropped;
                    // Coalescing drops only frames that were actually in
                    // this drained batch — a shed frame can never also
                    // be counted as coalesced, because it never reached
                    // the drain.
                    assert!(
                        kept.iter().all(|f| batch_ids.contains(&f.epoch)),
                        "seed {seed}"
                    );
                    assert_eq!(kept.len() + dropped, batch_ids.len(), "seed {seed}");
                    delivered_ids.extend(kept.iter().map(|f| f.epoch));
                }
            }
        }

        // Lifecycle is never shed and never coalesced: all of it
        // arrives, in order.
        let sent_lifecycle: Vec<u64> = msgs
            .iter()
            .filter_map(|m| match m {
                Msg::Lifecycle(id) => Some(*id),
                Msg::Report(_) => None,
            })
            .collect();
        assert_eq!(lifecycle_ids, sent_lifecycle, "seed {seed}");

        // Every report frame has exactly one fate: shed at the inbox,
        // dropped by the coalescer, or delivered to the controller.
        let reports_sent = msgs.len() - sent_lifecycle.len();
        assert_eq!(
            shed_count + coalesced_count + delivered_ids.len(),
            reports_sent,
            "seed {seed}: frames double- or un-counted \
             (shed {shed_count}, coalesced {coalesced_count}, delivered {})",
            delivered_ids.len()
        );
    }
}
