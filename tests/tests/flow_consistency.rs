//! Integration: the flow-level queueing simulator agrees with the analytic
//! model for every policy across scales and seeds.

use wolt_core::baselines::{Greedy, Rssi};
use wolt_core::{evaluate, AssociationPolicy, Wolt};
use wolt_sim::flowsim::{simulate_flows, FlowSimConfig};
use wolt_tests::{enterprise_scenario, lab_scenario};

fn check(scenario: &wolt_sim::Scenario, policy: &dyn AssociationPolicy, tol: f64) {
    let network = scenario.network().expect("builds");
    let assoc = policy.associate(&network).expect("runs");
    let analytic = evaluate(&network, &assoc).expect("valid");
    let flows = simulate_flows(&network, &assoc, &FlowSimConfig::default()).expect("flows");
    let gap =
        (flows.aggregate.value() - analytic.aggregate.value()).abs() / analytic.aggregate.value();
    assert!(
        gap < tol,
        "{}: flow {} vs analytic {} (gap {gap:.4})",
        policy.name(),
        flows.aggregate,
        analytic.aggregate
    );
    // Per-user agreement too, not just in aggregate.
    for i in 0..network.users() {
        let a = analytic.per_user[i].value();
        let f = flows.per_user[i].value();
        assert!(
            (a - f).abs() < tol * a.max(1.0),
            "{}: user {i} flow {f} vs analytic {a}",
            policy.name()
        );
    }
}

#[test]
fn flows_match_analytic_on_lab_scenarios() {
    for seed in 0..4 {
        let scenario = lab_scenario(7, seed);
        check(&scenario, &Wolt::new(), 0.05);
        check(&scenario, &Greedy::new(), 0.05);
        check(&scenario, &Rssi, 0.05);
    }
}

#[test]
fn flows_match_analytic_on_enterprise_scenarios() {
    for seed in 0..2 {
        let scenario = enterprise_scenario(24, seed);
        check(&scenario, &Wolt::new(), 0.06);
        check(&scenario, &Rssi, 0.06);
    }
}

#[test]
fn flow_ordering_matches_analytic_ordering() {
    // The queueing pipeline must preserve the policy ranking the analytic
    // model predicts — otherwise the evaluation and the "physics" would
    // disagree about who wins.
    let scenario = enterprise_scenario(30, 11);
    let network = scenario.network().expect("builds");
    let rank = |policy: &dyn AssociationPolicy| {
        let assoc = policy.associate(&network).expect("runs");
        simulate_flows(&network, &assoc, &FlowSimConfig::default())
            .expect("flows")
            .aggregate
            .value()
    };
    let wolt = rank(&Wolt::new());
    let rssi = rank(&Rssi);
    assert!(
        wolt > rssi,
        "flow-level ranking flipped: WOLT {wolt} vs RSSI {rssi}"
    );
}
