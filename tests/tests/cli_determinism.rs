//! Determinism of the CLI solve pipeline (ISSUE: same seed → byte-identical
//! report JSON; different seeds → different reports).
//!
//! The full `generate → solve → serialize` path must be a pure function of
//! its seeds: the in-tree ChaCha8 stream is platform-independent and the
//! JSON writer emits fields in a fixed order with a deterministic float
//! representation, so two runs cannot differ even at the byte level.

use wolt_cli::commands::{
    compare_with_threads, generate, solve, solve_with_threads, PolicyChoice, PresetChoice,
};
use wolt_support::json::ToJson;

/// Runs the whole pipeline and returns the pretty report JSON exactly as
/// `wolt solve` would print it.
fn pipeline_json(preset: PresetChoice, users: usize, gen_seed: u64, solve_seed: u64) -> String {
    let spec = generate(preset, users, gen_seed).expect("generate succeeds");
    let report = solve(&spec, PolicyChoice::Wolt, solve_seed).expect("solve succeeds");
    report.to_json().to_pretty()
}

#[test]
fn same_seed_is_byte_identical() {
    for (preset, users) in [(PresetChoice::Enterprise, 24), (PresetChoice::Lab, 7)] {
        let first = pipeline_json(preset, users, 42, 0);
        let second = pipeline_json(preset, users, 42, 0);
        assert_eq!(first, second, "same seed must give byte-identical JSON");
    }
}

#[test]
fn same_seed_spec_is_byte_identical() {
    let first = generate(PresetChoice::Enterprise, 24, 7).unwrap().to_json();
    let second = generate(PresetChoice::Enterprise, 24, 7).unwrap().to_json();
    assert_eq!(first, second);
}

#[test]
fn different_seeds_differ() {
    let a = pipeline_json(PresetChoice::Enterprise, 24, 42, 0);
    let b = pipeline_json(PresetChoice::Enterprise, 24, 43, 0);
    assert_ne!(a, b, "different generation seeds must change the report");
}

#[test]
fn thread_count_never_changes_report_bytes() {
    // `--threads` must be a pure throughput knob: the report bytes that
    // `wolt solve`/`wolt compare` print are identical at 1, 2, and 8
    // workers, including for the brute-force Optimal policy whose
    // enumeration actually fans out across the pool.
    let spec = generate(PresetChoice::Lab, 7, 42).expect("generate succeeds");
    for policy in [PolicyChoice::Wolt, PolicyChoice::Optimal] {
        let reference = solve_with_threads(&spec, policy, 0, Some(1))
            .expect("solve succeeds")
            .to_json()
            .to_pretty();
        for threads in [2usize, 8] {
            let candidate = solve_with_threads(&spec, policy, 0, Some(threads))
                .expect("solve succeeds")
                .to_json()
                .to_pretty();
            assert_eq!(
                reference, candidate,
                "{policy:?} report changed at {threads} threads"
            );
        }
    }
    let reference: Vec<String> = compare_with_threads(&spec, 0, Some(1))
        .expect("compare succeeds")
        .iter()
        .map(|r| r.to_json().to_pretty())
        .collect();
    for threads in [2usize, 8] {
        let candidate: Vec<String> = compare_with_threads(&spec, 0, Some(threads))
            .expect("compare succeeds")
            .iter()
            .map(|r| r.to_json().to_pretty())
            .collect();
        assert_eq!(reference, candidate);
    }
}

#[test]
fn random_policy_seed_changes_report() {
    // The solve seed only feeds the Random policy; with a fixed spec it must
    // still be deterministic per seed and vary across seeds.
    let spec = generate(PresetChoice::Enterprise, 24, 42).unwrap();
    let a1 = solve(&spec, PolicyChoice::Random, 1)
        .unwrap()
        .to_json()
        .to_pretty();
    let a2 = solve(&spec, PolicyChoice::Random, 1)
        .unwrap()
        .to_json()
        .to_pretty();
    let b = solve(&spec, PolicyChoice::Random, 2)
        .unwrap()
        .to_json()
        .to_pretty();
    assert_eq!(a1, a2);
    assert_ne!(a1, b);
}
