//! Property tests for the generational snapshot store: arbitrary
//! on-disk damage — truncation, bit flips, wholesale garbage — must
//! never panic the loader, and every load must either return the newest
//! *intact* generation or fail with the typed corruption error.
//!
//! This is the disk-side half of the crash-safety contract. The chaos
//! harness (`wolt chaos`) proves real crashes recover end-to-end; these
//! properties sweep the damage space far wider than real crashes can,
//! including states no single crash produces (middle generations
//! damaged, every generation damaged) where the store must *refuse*
//! rather than guess.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use wolt_daemon::store::decode_snapshot;
use wolt_daemon::{DaemonError, DaemonSnapshot, SnapshotCorrupt, SnapshotStore};
use wolt_support::check::Runner;
use wolt_support::rng::RngCore;
use wolt_testbed::{ControllerConfig, ControllerCore, ControllerPolicy};
use wolt_units::Mbps;

/// A distinguishable snapshot per generation: the epoch count differs,
/// so a load that silently returns the wrong generation is caught.
fn sample(epochs_done: usize) -> DaemonSnapshot {
    let mut core = ControllerCore::new(
        2,
        ControllerConfig {
            policy: ControllerPolicy::Wolt,
            estimated_capacities: vec![Mbps::new(50.0), Mbps::new(30.0)],
            strict: false,
        },
    );
    core.handle_report(0, 0, &[Some(Mbps::new(20.0)), Some(Mbps::new(5.0))], 0)
        .unwrap();
    DaemonSnapshot {
        epochs_done,
        present: vec![true, false],
        unresponsive: vec![false, false],
        initial_attach: vec![Some(0), None],
        retries: epochs_done,
        core: core.snapshot(),
    }
}

/// One way to damage one generation's file.
#[derive(Debug, Clone)]
enum Damage {
    /// Keep only a strict prefix (a torn write).
    Truncate { keep_fraction_pct: u64 },
    /// Flip one bit (bit rot).
    BitFlip { byte_seed: u64, bit: u32 },
    /// Replace the file wholesale with unrelated bytes.
    Garbage { bytes: Vec<u8> },
}

impl Damage {
    fn apply(&self, bytes: &[u8]) -> Vec<u8> {
        match self {
            Damage::Truncate { keep_fraction_pct } => {
                // A *strict* prefix: `pct` in 0..=99 keeps at least 0 and
                // at most len-1 bytes, so the result never verifies.
                let keep = (bytes.len() * (*keep_fraction_pct as usize)) / 100;
                bytes[..keep.min(bytes.len().saturating_sub(1))].to_vec()
            }
            Damage::BitFlip { byte_seed, bit } => {
                let mut out = bytes.to_vec();
                let at = (*byte_seed as usize) % out.len();
                out[at] ^= 1 << (bit % 8);
                out
            }
            Damage::Garbage { bytes } => bytes.clone(),
        }
    }
}

/// One property case: which of the three generations get damaged, how.
#[derive(Debug, Clone)]
struct Case {
    damage: Vec<(u64, Damage)>,
}

fn generate_case(rng: &mut impl RngCore) -> Case {
    // A non-empty subset of {0, 1, 2}.
    let mask = 1 + rng.next_u64() % 7;
    let damage = (0u64..3)
        .filter(|g| mask & (1 << g) != 0)
        .map(|generation| {
            let kind = rng.next_u64() % 3;
            let damage = match kind {
                0 => Damage::Truncate {
                    keep_fraction_pct: rng.next_u64() % 100,
                },
                1 => Damage::BitFlip {
                    byte_seed: rng.next_u64(),
                    bit: (rng.next_u64() % 8) as u32,
                },
                _ => Damage::Garbage {
                    bytes: (0..rng.next_u64() % 64)
                        .map(|_| rng.next_u64() as u8)
                        .collect(),
                },
            };
            (generation, damage)
        })
        .collect();
    Case { damage }
}

/// A fresh store directory, unique per test thread and case.
fn case_dir() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "wolt-store-prop-{}-{:?}-{n}",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[test]
fn damaged_stores_load_the_newest_intact_generation_or_refuse() {
    Runner::new("damaged_stores_load_the_newest_intact_generation_or_refuse")
        .cases(96)
        .run(generate_case, |case| {
            let dir = case_dir();
            let _ = std::fs::remove_dir_all(&dir);
            let mut store = SnapshotStore::open(&dir, 3).map_err(|e| format!("open: {e}"))?;
            for epoch in 1..=3 {
                store
                    .save(&sample(epoch))
                    .map_err(|e| format!("save: {e}"))?;
            }
            for (generation, damage) in &case.damage {
                let path = store.generation_path(*generation);
                let bytes = std::fs::read(&path).map_err(|e| format!("read: {e}"))?;
                let damaged = damage.apply(&bytes);
                // Damage must actually damage: the verifier is the
                // oracle here, and it is unit-tested separately.
                if decode_snapshot(&damaged, "").is_ok() {
                    return Err(format!(
                        "mutation left generation {generation} valid: {damage:?}"
                    ));
                }
                std::fs::write(&path, &damaged).map_err(|e| format!("write: {e}"))?;
            }
            let damaged: Vec<u64> = case.damage.iter().map(|(g, _)| *g).collect();
            let expected = (0u64..3).rev().find(|g| !damaged.contains(g));
            let reopened = SnapshotStore::open(&dir, 3).map_err(|e| format!("reopen: {e}"))?;
            let verdict = match (reopened.load(), expected) {
                (Ok(Some((generation, snapshot))), Some(want)) => {
                    if generation != want {
                        Err(format!("loaded generation {generation}, wanted {want}"))
                    } else if snapshot != sample(want as usize + 1) {
                        Err(format!("generation {generation} loaded with wrong content"))
                    } else {
                        Ok(())
                    }
                }
                (Err(DaemonError::SnapshotCorrupt { .. }), None) => Ok(()),
                (got, want) => Err(format!(
                    "load mismatch: wanted {want:?} intact, got {:?}",
                    got.map(|ok| ok.map(|(g, _)| g))
                )),
            };
            let _ = std::fs::remove_dir_all(&dir);
            verdict
        });
}

#[test]
fn an_intact_snapshot_for_another_site_fails_typed_not_rolled_back() {
    // The fleet half of the damage contract: bit rot is a rollback
    // candidate (older generations may verify), but an *intact*
    // snapshot stamped with a different site id means the directory is
    // mis-wired — loading must refuse with the typed error rather than
    // roll back past it or silently adopt another segment's state.
    let dir = case_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = SnapshotStore::open_site(&dir, 3, "floor-1").unwrap();
    store.save(&sample(1)).unwrap();
    store.save(&sample(2)).unwrap();
    drop(store);

    let foreign = SnapshotStore::open_site(&dir, 3, "floor-2").unwrap();
    match foreign.load() {
        Err(DaemonError::SnapshotCorrupt(SnapshotCorrupt::WrongSite {
            expected, found, ..
        })) => {
            assert_eq!(expected, "floor-2");
            assert_eq!(found, "floor-1");
        }
        other => panic!(
            "expected SnapshotCorrupt::WrongSite, got {:?}",
            other.map(|ok| ok.map(|(g, _)| g))
        ),
    }

    // The rightful owner still loads the newest generation, so the
    // foreign probe was side-effect free.
    let owner = SnapshotStore::open_site(&dir, 3, "floor-1").unwrap();
    match owner.load() {
        Ok(Some((1, snapshot))) => assert_eq!(snapshot, sample(2)),
        other => panic!(
            "owner should load generation 1, got {:?}",
            other.map(|ok| ok.map(|(g, _)| g))
        ),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damage_beyond_the_newest_generation_never_goes_unnoticed() {
    // Complement of the recovery property: whenever damage forces a
    // rollback (the newest generation is hit), the survivors the loader
    // picks must still satisfy the full verifier — the loader is not
    // allowed to "repair" by accepting partially-valid bytes.
    Runner::new("damage_beyond_the_newest_generation_never_goes_unnoticed")
        .cases(32)
        .run(
            |rng| {
                // Truncation point swept across the whole file, including
                // cuts inside the trailer.
                rng.next_u64()
            },
            |&cut_seed| {
                let dir = case_dir();
                let _ = std::fs::remove_dir_all(&dir);
                let mut store = SnapshotStore::open(&dir, 3).map_err(|e| format!("open: {e}"))?;
                store.save(&sample(1)).map_err(|e| format!("save: {e}"))?;
                store.save(&sample(2)).map_err(|e| format!("save: {e}"))?;
                let newest = store.generation_path(1);
                let bytes = std::fs::read(&newest).map_err(|e| format!("read: {e}"))?;
                let cut = (cut_seed as usize) % bytes.len();
                std::fs::write(&newest, &bytes[..cut]).map_err(|e| format!("write: {e}"))?;
                let verdict = match store.load() {
                    Ok(Some((0, snapshot))) if snapshot == sample(1) => Ok(()),
                    other => Err(format!(
                        "expected rollback to generation 0, got {:?}",
                        other.map(|ok| ok.map(|(g, _)| g))
                    )),
                };
                let _ = std::fs::remove_dir_all(&dir);
                verdict
            },
        );
}
