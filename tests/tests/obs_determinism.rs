//! The observability determinism matrix: enabling metrics collection
//! never perturbs results, and the merged counter totals are themselves
//! deterministic at every worker-pool width.
//!
//! Two sessions are driven at `WOLT_THREADS` ∈ {1, 2, 8}: a lossy
//! in-process rig session (seeded drops and a crashed agent, zero
//! artificial delay so every retransmission is decision-driven) and a
//! clean daemon loopback session over TCP. For each, the canonical
//! report AND the full merged counter map — solves, directives,
//! retransmissions, wire frames, everything — must be byte-for-byte
//! identical across thread counts. Per-thread counter shards are merged
//! in worker index order by the pool, and counter addition is
//! commutative, so any divergence here means an obs write leaked into a
//! decision path or a shard was lost.
//!
//! Timing histograms (`*_us`) and gauges are deliberately outside this
//! contract; only counters are compared.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

use wolt_daemon::{run_agent, Daemon, DaemonConfig};
use wolt_support::obs;
use wolt_testbed::{
    run_faulty_session, ControllerPolicy, FaultPlan, LinkFaults, RigConfig, SessionEvent,
};
use wolt_tests::lab_scenario;

const SCENARIO_SEED: u64 = 42;
const NOISE_SEED: u64 = 0;

/// Serializes the tests in this binary: both the obs registry and the
/// `WOLT_THREADS` variable are process-global.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    let original = std::env::var("WOLT_THREADS").ok();
    std::env::set_var("WOLT_THREADS", threads);
    let out = f();
    match original {
        Some(v) => std::env::set_var("WOLT_THREADS", v),
        None => std::env::remove_var("WOLT_THREADS"),
    }
    out
}

fn all_join(users: usize) -> Vec<SessionEvent> {
    (0..users).map(SessionEvent::Join).collect()
}

/// Seeded message loss and a crashed agent, but *zero* artificial delay:
/// with fault decisions keyed by message identity, every retransmission
/// and ack timeout is then forced by the plan rather than the scheduler,
/// so their counts are legitimately part of the determinism contract.
fn lossy_plan() -> FaultPlan {
    FaultPlan {
        seed: 7,
        to_cc: LinkFaults {
            drop: 0.2,
            duplicate: 0.1,
            max_delay: Duration::ZERO,
        },
        to_client: LinkFaults {
            drop: 0.2,
            duplicate: 0.1,
            max_delay: Duration::ZERO,
        },
        crashed: vec![3],
        wedged: vec![],
    }
}

/// Deadlines tuned for the matrix: the ack deadline is 10× the default
/// so a busy CI scheduler cannot trip a spurious retry (dropped messages
/// still trip their deterministic ones), while the event budget for the
/// crashed agent is trimmed so five measured runs stay fast.
fn matrix_deadlines(d: &mut wolt_testbed::Deadlines) {
    d.ack = Duration::from_millis(250);
    d.event = Duration::from_millis(500);
    d.event_attempts = 3;
}

/// Missing counters read as zero: a counter registers lazily on first
/// use, so a session that never exercises a site leaves no entry.
fn counter(map: &BTreeMap<String, u64>, name: &str) -> u64 {
    map.get(name).copied().unwrap_or(0)
}

fn measured_faulty_session() -> (String, BTreeMap<String, u64>) {
    obs::reset();
    let mut config = RigConfig::new(ControllerPolicy::Wolt);
    matrix_deadlines(&mut config.deadlines);
    let report = run_faulty_session(
        &lab_scenario(7, SCENARIO_SEED),
        &config,
        &all_join(7),
        NOISE_SEED,
        &lossy_plan(),
    )
    .expect("lossy session completes");
    (report.canonical(), obs::snapshot().counters)
}

fn measured_daemon_loopback() -> (String, BTreeMap<String, u64>) {
    obs::reset();
    let scenario = lab_scenario(7, SCENARIO_SEED);
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    matrix_deadlines(&mut config.deadlines);
    let daemon =
        Daemon::bind("127.0.0.1:0", scenario.clone(), all_join(7), config).expect("loopback bind");
    let addr = daemon.local_addr().expect("bound address");
    let agents: Vec<_> = (0..7)
        .map(|i| {
            let scenario = scenario.clone();
            thread::spawn(move || run_agent(addr, &scenario, i, &format!("laptop-{i}")))
        })
        .collect();
    let outcome = daemon.run().expect("session runs");
    for handle in agents {
        handle.join().expect("agent thread").expect("agent exits");
    }
    assert!(outcome.completed, "loopback session did not complete");
    (outcome.report.canonical(), obs::snapshot().counters)
}

fn assert_matrix(
    label: &str,
    measure: fn() -> (String, BTreeMap<String, u64>),
    check_baseline: impl Fn(&BTreeMap<String, u64>),
) {
    let (base_canonical, base_counters) = with_threads("1", measure);
    check_baseline(&base_counters);
    for threads in ["2", "8"] {
        let (canonical, counters) = with_threads(threads, measure);
        assert_eq!(
            canonical, base_canonical,
            "{label}: canonical report diverged at WOLT_THREADS={threads}"
        );
        assert_eq!(
            counters, base_counters,
            "{label}: merged counter totals diverged at WOLT_THREADS={threads}"
        );
    }
}

#[test]
fn faulty_session_counters_are_thread_count_invariant() {
    let _guard = lock();
    assert_matrix("faulty rig session", measured_faulty_session, |counters| {
        // Non-vacuousness: the lossy plan must actually exercise the
        // solver, directive, and retransmission counters being pinned.
        assert!(counter(counters, "core.solves") > 0, "no solves counted");
        assert!(
            counter(counters, "cc.directives") > 0,
            "no directives counted"
        );
        assert!(
            counter(counters, "cc.retransmissions") + counter(counters, "harness.retransmissions")
                > 0,
            "the lossy plan forced no retransmissions — the matrix is vacuous"
        );
    });
}

#[test]
fn daemon_loopback_counters_are_thread_count_invariant() {
    let _guard = lock();
    assert_matrix("daemon loopback", measured_daemon_loopback, |counters| {
        assert!(counter(counters, "core.solves") > 0, "no solves counted");
        assert!(
            counter(counters, "cc.directives") > 0,
            "no directives counted"
        );
        assert!(
            counter(counters, "daemon.frames_in") > 0,
            "no inbound frames"
        );
        assert!(
            counter(counters, "daemon.frames_out") > 0,
            "no outbound frames"
        );
        assert!(counter(counters, "daemon.bytes_in") > 0, "no inbound bytes");
        // A clean loopback run retransmits nothing — pin that too.
        assert_eq!(counter(counters, "cc.retransmissions"), 0);
    });
}

#[test]
fn disabling_obs_does_not_change_the_faulty_session_report() {
    let _guard = lock();
    let (enabled_canonical, counters) = measured_faulty_session();
    assert!(counter(&counters, "core.solves") > 0);
    obs::set_enabled(false);
    let result = std::panic::catch_unwind(|| {
        obs::reset();
        let (disabled_canonical, disabled_counters) = measured_faulty_session();
        assert_eq!(
            disabled_canonical, enabled_canonical,
            "disabling obs changed the session outcome"
        );
        // And collection really was off.
        assert!(disabled_counters.values().all(|&v| v == 0));
    });
    obs::set_enabled(true);
    if let Err(payload) = result {
        std::panic::resume_unwind(payload);
    }
}
