//! Integration: stress the threaded Central-Controller rig.
//!
//! The rig spawns one OS thread per client plus the controller; these
//! tests push the thread/channel machinery harder than the 7-laptop paper
//! experiment — larger populations, interleaved join/leave storms, and
//! several rigs running concurrently — to flush out deadlocks and
//! cross-talk.

use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;
use wolt_testbed::{run_rig, run_session, ControllerPolicy, RigConfig, SessionEvent};

fn scenario(users: usize, seed: u64) -> Scenario {
    let mut config = ScenarioConfig::lab(users);
    config.extenders = 4;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Scenario::generate(&config, &mut rng).expect("scenario generates")
}

#[test]
fn thirty_client_rig_completes() {
    let scenario = scenario(30, 1);
    let outcome =
        run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 0).expect("rig completes");
    assert!(outcome.association.is_complete());
    assert!(outcome.aggregate > 0.0);
    assert_eq!(outcome.per_user.len(), 30);
}

#[test]
fn join_leave_storm_stays_consistent() {
    let scenario = scenario(12, 2);
    // Everyone joins; half leave; the leavers rejoin; a third leave again.
    let mut events: Vec<SessionEvent> = (0..12).map(SessionEvent::Join).collect();
    events.extend((0..6).map(SessionEvent::Leave));
    events.extend((0..6).map(SessionEvent::Join));
    events.extend((8..12).map(SessionEvent::Leave));
    let outcome = run_session(
        &scenario,
        &RigConfig::new(ControllerPolicy::Wolt),
        &events,
        0,
    )
    .expect("session completes");
    // Users 8..12 are absent, everyone else present.
    for i in 0..8 {
        assert!(outcome.association.target(i).is_some(), "user {i} missing");
    }
    for i in 8..12 {
        assert_eq!(outcome.association.target(i), None, "user {i} lingering");
    }
    assert!(outcome.aggregate > 0.0);
}

#[test]
fn concurrent_rigs_do_not_interfere() {
    // Several rigs (each with its own controller + agents) in parallel OS
    // threads must produce exactly what they produce in isolation.
    let expected: Vec<f64> = (0..4)
        .map(|seed| {
            run_rig(
                &scenario(8, seed),
                &RigConfig::new(ControllerPolicy::Wolt),
                0,
            )
            .expect("rig runs")
            .aggregate
        })
        .collect();

    let handles: Vec<_> = (0..4u64)
        .map(|seed| {
            std::thread::spawn(move || {
                run_rig(
                    &scenario(8, seed),
                    &RigConfig::new(ControllerPolicy::Wolt),
                    0,
                )
                .expect("rig runs")
                .aggregate
            })
        })
        .collect();
    for (seed, handle) in handles.into_iter().enumerate() {
        let got = handle.join().expect("thread completes");
        assert!(
            (got - expected[seed]).abs() < 1e-9,
            "seed {seed}: concurrent {got} vs isolated {}",
            expected[seed]
        );
    }
}

#[test]
fn repeated_sessions_are_reproducible() {
    let scenario = scenario(10, 5);
    let events: Vec<SessionEvent> = (0..10)
        .map(SessionEvent::Join)
        .chain([SessionEvent::Leave(3), SessionEvent::Leave(7)])
        .collect();
    let config = RigConfig::new(ControllerPolicy::Greedy);
    let a = run_session(&scenario, &config, &events, 9).expect("runs");
    let b = run_session(&scenario, &config, &events, 9).expect("runs");
    assert_eq!(a, b);
}
