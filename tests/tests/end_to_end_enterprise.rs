//! Integration: full enterprise pipeline — scenario generation → policy →
//! physical evaluation — and its invariants.

use wolt_core::baselines::{Greedy, Random, Rssi, SelfishGreedy};
use wolt_core::{evaluate, AssociationPolicy, Wolt};
use wolt_tests::{enterprise_network, enterprise_scenario};
use wolt_units::Mbps;

fn all_policies() -> Vec<Box<dyn AssociationPolicy>> {
    vec![
        Box::new(Wolt::new()),
        Box::new(Greedy::new()),
        Box::new(SelfishGreedy::new()),
        Box::new(Rssi),
        Box::new(Random::new(99)),
    ]
}

#[test]
fn every_policy_produces_complete_valid_associations() {
    let net = enterprise_network(36, 1);
    for policy in all_policies() {
        let assoc = policy.associate(&net).expect("policy runs");
        assert!(assoc.is_complete(), "{} left users out", policy.name());
        assert!(
            net.validate_association(&assoc).is_ok(),
            "{} produced invalid association",
            policy.name()
        );
    }
}

#[test]
fn throughput_conservation_holds_for_every_policy() {
    let net = enterprise_network(24, 2);
    for policy in all_policies() {
        let assoc = policy.associate(&net).expect("policy runs");
        let eval = evaluate(&net, &assoc).expect("valid");
        let user_sum: f64 = eval.per_user.iter().map(|t| t.value()).sum();
        let ext_sum: f64 = eval.per_extender.iter().map(|t| t.value()).sum();
        assert!((user_sum - eval.aggregate.value()).abs() < 1e-6);
        assert!((ext_sum - eval.aggregate.value()).abs() < 1e-6);
    }
}

#[test]
fn no_extender_exceeds_its_plc_budget() {
    let net = enterprise_network(48, 3);
    for policy in all_policies() {
        let assoc = policy.associate(&net).expect("policy runs");
        let eval = evaluate(&net, &assoc).expect("valid");
        let share_sum: f64 = eval.plc_shares.iter().sum();
        assert!(
            share_sum <= 1.0 + 1e-9,
            "{}: airtime oversubscribed",
            policy.name()
        );
        for j in 0..net.extenders() {
            assert!(
                eval.per_extender[j].value() <= net.capacity(j).value() * eval.plc_shares[j] + 1e-6,
                "{}: extender {j} over its airtime grant",
                policy.name()
            );
            assert!(
                eval.per_extender[j] <= eval.wifi_demand[j] + Mbps::new(1e-6),
                "{}: extender {j} over its WiFi demand",
                policy.name()
            );
        }
    }
}

#[test]
fn no_user_exceeds_its_wifi_rate() {
    let net = enterprise_network(36, 4);
    for policy in all_policies() {
        let assoc = policy.associate(&net).expect("policy runs");
        let eval = evaluate(&net, &assoc).expect("valid");
        for i in 0..net.users() {
            let j = assoc.target(i).expect("complete");
            let rate = net.rate(i, j).expect("reachable");
            assert!(
                eval.per_user[i] <= rate + Mbps::new(1e-9),
                "{}: user {i} above its own link rate",
                policy.name()
            );
        }
    }
}

#[test]
fn wolt_beats_rssi_on_average_over_seeds() {
    let mut wolt_total = 0.0;
    let mut rssi_total = 0.0;
    for seed in 10..20 {
        let net = enterprise_network(36, seed);
        let w = evaluate(&net, &Wolt::new().associate(&net).expect("runs")).expect("valid");
        let r = evaluate(&net, &Rssi.associate(&net).expect("runs")).expect("valid");
        wolt_total += w.aggregate.value();
        rssi_total += r.aggregate.value();
    }
    assert!(
        wolt_total > 1.5 * rssi_total,
        "WOLT {wolt_total} should dominate RSSI {rssi_total} in the enterprise regime"
    );
}

#[test]
fn wolt_at_least_matches_greedy_on_average_over_seeds() {
    let mut wolt_total = 0.0;
    let mut greedy_total = 0.0;
    for seed in 30..42 {
        let net = enterprise_network(36, seed);
        wolt_total += evaluate(&net, &Wolt::new().associate(&net).expect("runs"))
            .expect("valid")
            .aggregate
            .value();
        greedy_total += evaluate(&net, &Greedy::new().associate(&net).expect("runs"))
            .expect("valid")
            .aggregate
            .value();
    }
    assert!(
        wolt_total >= greedy_total,
        "WOLT {wolt_total} vs Greedy {greedy_total}"
    );
}

#[test]
fn random_policy_is_the_floor() {
    let net = enterprise_network(36, 5);
    let wolt = evaluate(&net, &Wolt::new().associate(&net).expect("runs"))
        .expect("valid")
        .aggregate;
    let random = evaluate(&net, &Random::new(5).associate(&net).expect("runs"))
        .expect("valid")
        .aggregate;
    assert!(wolt > random, "WOLT {wolt} vs Random {random}");
}

#[test]
fn scenario_rates_and_network_agree() {
    let scenario = enterprise_scenario(12, 6);
    let net = scenario.network().expect("builds");
    for i in 0..12 {
        for j in 0..net.extenders() {
            assert_eq!(scenario.rate(i, j), net.rate(i, j), "({i},{j}) disagree");
        }
    }
}

#[test]
fn growing_population_never_decreases_wolt_aggregate_much() {
    // More users = more demand; with WOLT the aggregate should be
    // (weakly) non-degrading within noise as the population doubles.
    let small = enterprise_network(18, 7);
    let large = enterprise_network(36, 7);
    let small_agg = evaluate(&small, &Wolt::new().associate(&small).expect("runs"))
        .expect("valid")
        .aggregate
        .value();
    let large_agg = evaluate(&large, &Wolt::new().associate(&large).expect("runs"))
        .expect("valid")
        .aggregate
        .value();
    assert!(
        large_agg > 0.8 * small_agg,
        "aggregate collapsed with more users: {small_agg} -> {large_agg}"
    );
}
