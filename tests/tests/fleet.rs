//! The fleet's headline invariant and its control surface.
//!
//! A fleet multiplexing N sites behind one daemon must be *observably
//! indistinguishable*, per site, from N separate single-site daemons:
//! the canonical session reports byte-identical, at every shard count,
//! including across a kill/restart from the fleet snapshot root. On top
//! of that structural contract, the suite pins the lifecycle surface —
//! typed `site_gone` rejects for unknown and drained sites (fatal to
//! agents, not retried), and the wire-level `site add`/`drain`/`remove`
//! operations against a live fleet.

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use wolt_daemon::wire::{self, FleetOp, SiteSpec};
use wolt_daemon::{
    run_agent, run_site_agent, AgentRetry, Daemon, DaemonConfig, DaemonError, Envelope,
};
use wolt_fleet::{Fleet, FleetConfig, FleetOutcome, SiteDef};
use wolt_sim::Scenario;
use wolt_support::obs;
use wolt_testbed::{ControllerPolicy, SessionEvent};
use wolt_tests::lab_scenario;

/// Serializes the tests in this binary: the obs registry and the
/// `WOLT_THREADS` variable are process-global.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    let original = std::env::var("WOLT_THREADS").ok();
    std::env::set_var("WOLT_THREADS", threads);
    let out = f();
    match original {
        Some(v) => std::env::set_var("WOLT_THREADS", v),
        None => std::env::remove_var("WOLT_THREADS"),
    }
    out
}

fn all_join(users: usize) -> Vec<SessionEvent> {
    (0..users).map(SessionEvent::Join).collect()
}

/// A fresh directory under the system temp root, unique per call.
fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("wolt-fleet-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The acceptance-test fleet: three sites with different sizes, seeds,
/// and policies, so any cross-site state bleed shows up as a diff.
fn three_sites() -> Vec<SiteDef> {
    [
        ("alpha", 3usize, 11u64, ControllerPolicy::Wolt),
        ("beta", 4, 12, ControllerPolicy::Greedy),
        ("gamma", 5, 13, ControllerPolicy::Rssi),
    ]
    .into_iter()
    .map(|(id, users, seed, policy)| SiteDef {
        id: id.to_string(),
        scenario: lab_scenario(users, seed),
        events: all_join(users),
        policy,
        noise_seed: seed,
        stop_after: None,
    })
    .collect()
}

/// Runs one site as its own independent single-site daemon and returns
/// the canonical report — the baseline the fleet must reproduce.
fn single_site_canonical(def: &SiteDef) -> String {
    let mut config = DaemonConfig::new(def.policy);
    config.noise_seed = def.noise_seed;
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        def.scenario.clone(),
        def.events.clone(),
        config,
    )
    .expect("single-site bind");
    let addr = daemon.local_addr().expect("bound address");
    let agents: Vec<_> = (0..def.scenario.user_positions.len())
        .map(|i| {
            let scenario = def.scenario.clone();
            thread::spawn(move || run_agent(addr, &scenario, i, &format!("solo-{i}")))
        })
        .collect();
    let outcome = daemon.run().expect("single-site session runs");
    for handle in agents {
        handle.join().expect("agent thread").expect("agent exits");
    }
    assert!(outcome.completed, "single-site baseline did not complete");
    outcome.report.canonical()
}

/// Boots a fleet over the given defs, connects every site's agents, and
/// returns the outcome.
fn run_fleet(defs: Vec<SiteDef>, snapshot_root: Option<PathBuf>) -> FleetOutcome {
    let scenarios: Vec<(String, Scenario)> = defs
        .iter()
        .map(|d| (d.id.clone(), d.scenario.clone()))
        .collect();
    let config = FleetConfig {
        snapshot_root,
        ..FleetConfig::default()
    };
    let fleet = Fleet::bind("127.0.0.1:0", defs, config).expect("fleet bind");
    let addr = fleet.local_addr().expect("bound address");
    let agents: Vec<_> = scenarios
        .iter()
        .flat_map(|(site, scenario)| {
            (0..scenario.user_positions.len()).map(|i| {
                let site = site.clone();
                let scenario = scenario.clone();
                thread::spawn(move || {
                    run_site_agent(
                        addr,
                        &scenario,
                        &site,
                        i,
                        &format!("{site}-{i}"),
                        &AgentRetry::default(),
                    )
                })
            })
        })
        .collect();
    let outcome = fleet.run().expect("fleet runs");
    for handle in agents {
        handle.join().expect("agent thread").expect("agent exits");
    }
    outcome
}

/// The headline invariant, including crash-safety: per-site fleet
/// reports are byte-identical to three independent single-site daemons
/// at every shard count, and a fleet killed mid-run (per-site
/// `stop_after`) resumes from its snapshot root to the same bytes.
#[test]
fn fleet_matches_independent_daemons_across_shards_and_restart() {
    let _guard = lock();
    let defs = three_sites();
    let baselines: BTreeMap<String, String> = defs
        .iter()
        .map(|def| (def.id.clone(), single_site_canonical(def)))
        .collect();

    for threads in ["1", "2", "8"] {
        with_threads(threads, || {
            // Clean run, no persistence: straight equality.
            let clean = run_fleet(three_sites(), None);
            assert!(
                clean.all_completed(),
                "clean fleet at {threads} shards did not complete"
            );
            assert_eq!(
                clean.canonical_reports(),
                baselines,
                "clean fleet diverged from single-site daemons at WOLT_THREADS={threads}"
            );

            // Interrupted run: every site stops after two epochs, then a
            // second fleet process restarts from the same snapshot root
            // with fresh agents and must land on the same bytes.
            let root = fresh_dir(&format!("restart-{threads}"));
            let mut interrupted = three_sites();
            for def in &mut interrupted {
                def.stop_after = Some(2);
            }
            let first = run_fleet(interrupted, Some(root.clone()));
            for (id, result) in &first.sites {
                let outcome = result.as_ref().expect("interrupted site outcome");
                assert!(!outcome.completed, "site {id} was not interrupted");
                assert_eq!(outcome.epochs_done, 2, "site {id} stopped elsewhere");
            }
            let resumed = run_fleet(three_sites(), Some(root.clone()));
            assert!(
                resumed.all_completed(),
                "resumed fleet at {threads} shards did not complete"
            );
            assert_eq!(
                resumed.canonical_reports(),
                baselines,
                "restart from the fleet root diverged at WOLT_THREADS={threads}"
            );
            let _ = std::fs::remove_dir_all(&root);
        });
    }
}

/// The per-site metric labels are part of the determinism contract:
/// canonical reports AND the merged `site.*` counter totals must be
/// identical at every shard count (the registry merge is
/// shard-order-invariant).
#[test]
fn fleet_site_counters_are_shard_count_invariant() {
    let _guard = lock();
    let measure = || {
        obs::reset();
        let defs: Vec<SiteDef> = three_sites().into_iter().take(2).collect();
        let outcome = run_fleet(defs, None);
        assert!(outcome.all_completed(), "matrix fleet did not complete");
        let site_counters: BTreeMap<String, u64> = obs::snapshot()
            .counters
            .into_iter()
            .filter(|(name, _)| name.starts_with("site."))
            .collect();
        (outcome.canonical_reports(), site_counters)
    };
    let (base_reports, base_counters) = with_threads("1", measure);
    // Non-vacuousness: both sites counted epochs and solves.
    for site in ["alpha", "beta"] {
        for metric in ["epochs", "solved"] {
            let name = format!("site.{site}.{metric}");
            assert!(
                base_counters.get(&name).copied().unwrap_or(0) > 0,
                "{name} never counted — the matrix is vacuous"
            );
        }
    }
    for threads in ["2", "8"] {
        let (reports, counters) = with_threads(threads, measure);
        assert_eq!(
            reports, base_reports,
            "canonical reports diverged at WOLT_THREADS={threads}"
        );
        assert_eq!(
            counters, base_counters,
            "merged site.* counters diverged at WOLT_THREADS={threads}"
        );
    }
}

/// An agent naming a site the daemon does not host gets the typed
/// `site_gone` refusal and fails *fast* — the old behavior was to retry
/// the full backoff schedule against a refusal that can never heal.
#[test]
fn unknown_site_is_fatal_to_the_agent_not_retried() {
    let _guard = lock();
    let def = SiteDef {
        id: "only".into(),
        scenario: lab_scenario(2, 5),
        events: all_join(2),
        policy: ControllerPolicy::Wolt,
        noise_seed: 5,
        stop_after: None,
    };
    let scenario = def.scenario.clone();
    let fleet = Fleet::bind("127.0.0.1:0", vec![def], FleetConfig::default()).expect("fleet bind");
    let addr = fleet.local_addr().expect("bound address");

    let ghost = {
        let scenario = scenario.clone();
        thread::spawn(move || {
            // A generous retry budget: if site_gone were treated as a
            // transient failure, this would spin for many seconds.
            let retry = AgentRetry {
                attempts: 50,
                base: Duration::from_millis(100),
                cap: Duration::from_secs(2),
                seed: 0,
            };
            let started = Instant::now();
            let result = run_site_agent(addr, &scenario, "phantom", 0, "ghost", &retry);
            (result, started.elapsed())
        })
    };
    let agents: Vec<_> = (0..2)
        .map(|i| {
            let scenario = scenario.clone();
            thread::spawn(move || {
                run_site_agent(
                    addr,
                    &scenario,
                    "only",
                    i,
                    &format!("real-{i}"),
                    &AgentRetry::default(),
                )
            })
        })
        .collect();

    let outcome = fleet.run().expect("fleet runs");
    assert!(outcome.all_completed(), "hosted site did not complete");
    for handle in agents {
        handle.join().expect("agent thread").expect("agent exits");
    }
    let (result, elapsed) = ghost.join().expect("ghost thread");
    match result {
        Err(DaemonError::SiteGone { site }) => assert_eq!(site, "phantom"),
        other => panic!("expected DaemonError::SiteGone, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "site_gone took {elapsed:?} — the agent retried a permanent refusal"
    );
}

/// A single-site daemon is a one-site fleet with no registry: any sited
/// hello is refused with `site_gone`, both at the wire level and
/// through the agent API.
#[test]
fn single_site_daemon_refuses_sited_hellos() {
    let _guard = lock();
    let scenario = lab_scenario(1, 9);
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = 9;
    let daemon =
        Daemon::bind("127.0.0.1:0", scenario.clone(), all_join(1), config).expect("daemon bind");
    let addr = daemon.local_addr().expect("bound address");
    let daemon = thread::spawn(move || daemon.run());

    // Wire level: the reject names the site and the connection closes.
    let mut probe = TcpStream::connect(addr).expect("probe connects");
    probe
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    wire::send(
        &mut probe,
        &Envelope::Hello {
            client: 0,
            name: "misdirected".into(),
            site: Some("floor-9".into()),
        },
    )
    .expect("probe hello");
    match wire::recv(&mut probe).expect("probe reply") {
        Some(Envelope::SiteGone { site }) => assert_eq!(site, "floor-9"),
        other => panic!("expected site_gone, got {other:?}"),
    }
    drop(probe);

    // Agent API: typed and fatal.
    match run_site_agent(
        addr,
        &scenario,
        "floor-9",
        0,
        "misdirected",
        &AgentRetry::default(),
    ) {
        Err(DaemonError::SiteGone { site }) => assert_eq!(site, "floor-9"),
        other => panic!("expected DaemonError::SiteGone, got {other:?}"),
    }

    // The session itself is unharmed: the real (unsited) agent runs.
    let agent = {
        let scenario = scenario.clone();
        thread::spawn(move || run_agent(addr, &scenario, 0, "real"))
    };
    let outcome = daemon.join().expect("daemon thread").expect("session runs");
    agent.join().expect("agent thread").expect("agent exits");
    assert!(outcome.completed, "single-site session did not complete");
}

/// One control round-trip against a live fleet.
fn fleet_op(stream: &mut TcpStream, op: FleetOp) -> Envelope {
    wire::send(stream, &Envelope::Fleet(op)).expect("fleet op sends");
    wire::recv(stream)
        .expect("fleet reply arrives")
        .expect("fleet replied before closing")
}

/// Polls `fleet status` until `done` approves the site list.
fn await_status(
    stream: &mut TcpStream,
    what: &str,
    done: impl Fn(&[wire::SiteStatus]) -> bool,
) -> Vec<wire::SiteStatus> {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match fleet_op(stream, FleetOp::Status) {
            Envelope::FleetStatus { sites } => {
                if done(&sites) {
                    return sites;
                }
                assert!(
                    Instant::now() < deadline,
                    "fleet never reached the expected state ({what}); last: {sites:?}"
                );
                thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected fleet_status, got {other:?}"),
        }
    }
}

/// The lifecycle surface over the wire: status lists every site, add
/// boots a new site into the running fleet, drain detaches one site
/// without touching its neighbours, remove forgets it, and a drained
/// site's hello gets `site_gone`.
#[test]
fn fleet_ops_drive_a_live_fleet() {
    let _guard = lock();
    let alpha_scenario = lab_scenario(2, 21);
    let defs = vec![
        SiteDef {
            id: "alpha".into(),
            scenario: alpha_scenario.clone(),
            events: all_join(2),
            policy: ControllerPolicy::Wolt,
            noise_seed: 21,
            stop_after: None,
        },
        // Two sites that never get agents: they idle in their connect
        // window and keep the fleet alive while we drive the ops.
        SiteDef {
            id: "idle".into(),
            scenario: lab_scenario(1, 22),
            events: all_join(1),
            policy: ControllerPolicy::Wolt,
            noise_seed: 22,
            stop_after: None,
        },
        SiteDef {
            id: "hold".into(),
            scenario: lab_scenario(1, 23),
            events: all_join(1),
            policy: ControllerPolicy::Wolt,
            noise_seed: 23,
            stop_after: None,
        },
    ];
    let fleet = Fleet::bind("127.0.0.1:0", defs, FleetConfig::default()).expect("fleet bind");
    let addr = fleet.local_addr().expect("bound address");
    let fleet = thread::spawn(move || fleet.run());

    let mut ctl = TcpStream::connect(addr).expect("control connects");
    ctl.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Status lists all three sites, sorted.
    let sites = await_status(&mut ctl, "registry up", |s| s.len() == 3);
    let ids: Vec<&str> = sites.iter().map(|s| s.site.as_str()).collect();
    assert_eq!(ids, ["alpha", "hold", "idle"]);

    // Add a fourth site while the fleet runs, then serve it.
    match fleet_op(
        &mut ctl,
        FleetOp::Add {
            spec: SiteSpec {
                id: "fresh".into(),
                preset: "lab".into(),
                users: 1,
                seed: 77,
                policy: "wolt".into(),
                stop_after: None,
            },
        },
    ) {
        Envelope::FleetAck { op, ok: true, .. } => assert_eq!(op, "add"),
        other => panic!("expected an ack for add, got {other:?}"),
    }
    // A duplicate add is refused, not re-registered.
    match fleet_op(
        &mut ctl,
        FleetOp::Add {
            spec: SiteSpec {
                id: "alpha".into(),
                preset: "lab".into(),
                users: 1,
                seed: 1,
                policy: "wolt".into(),
                stop_after: None,
            },
        },
    ) {
        Envelope::FleetAck {
            ok: false, detail, ..
        } => {
            assert!(detail.contains("alpha"), "unhelpful nack: {detail:?}")
        }
        other => panic!("expected a nack for duplicate add, got {other:?}"),
    }

    let fresh_scenario = lab_scenario(1, 77);
    let fresh_agent = thread::spawn(move || {
        run_site_agent(
            addr,
            &fresh_scenario,
            "fresh",
            0,
            "fresh-0",
            &AgentRetry::default(),
        )
    });
    let alpha_agents: Vec<_> = (0..2)
        .map(|i| {
            let scenario = alpha_scenario.clone();
            thread::spawn(move || {
                run_site_agent(
                    addr,
                    &scenario,
                    "alpha",
                    i,
                    &format!("alpha-{i}"),
                    &AgentRetry::default(),
                )
            })
        })
        .collect();

    // Drain the idle site: it finishes (stopped, no agents ever came)
    // while alpha and fresh are untouched.
    match fleet_op(
        &mut ctl,
        FleetOp::Drain {
            site: "idle".into(),
        },
    ) {
        Envelope::FleetAck { op, ok: true, .. } => assert_eq!(op, "drain"),
        other => panic!("expected an ack for drain, got {other:?}"),
    }
    await_status(&mut ctl, "idle drained", |s| {
        s.iter().any(|s| s.site == "idle" && s.state == "done")
    });

    // A hello naming the drained site gets the typed reject.
    let mut late = TcpStream::connect(addr).expect("late agent connects");
    late.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    wire::send(
        &mut late,
        &Envelope::Hello {
            client: 0,
            name: "late".into(),
            site: Some("idle".into()),
        },
    )
    .expect("late hello");
    match wire::recv(&mut late).expect("late reply") {
        Some(Envelope::SiteGone { site }) => assert_eq!(site, "idle"),
        other => panic!("expected site_gone for the drained site, got {other:?}"),
    }
    drop(late);

    // Remove forgets the (already finished) site entirely.
    match fleet_op(
        &mut ctl,
        FleetOp::Remove {
            site: "idle".into(),
        },
    ) {
        Envelope::FleetAck { op, ok: true, .. } => assert_eq!(op, "remove"),
        other => panic!("expected an ack for remove, got {other:?}"),
    }
    let sites = await_status(&mut ctl, "idle removed", |s| {
        s.iter().all(|s| s.site != "idle")
    });
    assert!(sites.iter().any(|s| s.site == "fresh"));

    // Release the holdout so the fleet can finish.
    match fleet_op(
        &mut ctl,
        FleetOp::Drain {
            site: "hold".into(),
        },
    ) {
        Envelope::FleetAck { ok: true, .. } => {}
        other => panic!("expected an ack for the final drain, got {other:?}"),
    }
    drop(ctl);

    let outcome = fleet.join().expect("fleet thread").expect("fleet runs");
    for handle in alpha_agents {
        handle.join().expect("agent thread").expect("agent exits");
    }
    fresh_agent
        .join()
        .expect("fresh agent thread")
        .expect("fresh agent exits");

    let alpha = outcome.sites["alpha"].as_ref().expect("alpha outcome");
    assert!(alpha.completed, "alpha was disturbed by the ops");
    let fresh = outcome.sites["fresh"].as_ref().expect("fresh outcome");
    assert!(fresh.completed, "the added site did not complete");
    let idle = outcome.sites["idle"].as_ref().expect("idle outcome");
    assert!(!idle.completed, "the drained site cannot have completed");
    assert_eq!(idle.epochs_done, 0);
    let hold = outcome.sites["hold"].as_ref().expect("hold outcome");
    assert!(!hold.completed, "the drained holdout cannot have completed");
}
