//! Integration: the MAC micro-simulators agree with the analytic sharing
//! models that the association algorithms actually optimize against.

use wolt_plc::mac1901::{simulate_1901, Mac1901Config};
use wolt_plc::timeshare::{allocate_time_fair, ExtenderDemand};
use wolt_units::{Mbps, Seconds};
use wolt_wifi::cell::per_user_throughput;
use wolt_wifi::dcf::{simulate_dcf, DcfConfig};

#[test]
fn dcf_micro_sim_confirms_throughput_fairness() {
    // Eq. 1's core claim: per-user throughputs equalize regardless of PHY
    // rate. The micro-sim derives this from backoff mechanics.
    let rates = [Mbps::new(54.0), Mbps::new(18.0), Mbps::new(6.0)];
    let cfg = DcfConfig {
        duration: Seconds::new(4.0),
        ..DcfConfig::default()
    };
    let out = simulate_dcf(&rates, &cfg, 11).expect("valid sim");
    let max = out
        .per_station
        .iter()
        .map(|t| t.value())
        .fold(0.0, f64::max);
    let min = out
        .per_station
        .iter()
        .map(|t| t.value())
        .fold(f64::INFINITY, f64::min);
    assert!(max / min < 1.25, "throughput-fairness violated: {out:?}");
}

#[test]
fn dcf_relative_ordering_matches_analytic_model() {
    // Adding a slow station must shrink the per-user share in both the
    // analytic model and the micro-sim, by a comparable factor.
    let fast_only = [Mbps::new(54.0), Mbps::new(54.0)];
    let with_slow = [Mbps::new(54.0), Mbps::new(54.0), Mbps::new(6.0)];
    let cfg = DcfConfig {
        duration: Seconds::new(4.0),
        ..DcfConfig::default()
    };
    let sim_ratio = {
        let a = simulate_dcf(&fast_only, &cfg, 5)
            .expect("valid")
            .per_station[0]
            .value();
        let b = simulate_dcf(&with_slow, &cfg, 5)
            .expect("valid")
            .per_station[0]
            .value();
        b / a
    };
    let analytic_ratio = {
        let a = per_user_throughput(&fast_only).expect("usable").value();
        let b = per_user_throughput(&with_slow).expect("usable").value();
        b / a
    };
    assert!(
        (sim_ratio - analytic_ratio).abs() < 0.15,
        "degradation factors diverge: sim {sim_ratio} vs analytic {analytic_ratio}"
    );
}

#[test]
fn mac1901_micro_sim_confirms_time_fair_shares() {
    // Eq. 2's core claim: airtime (not throughput) equalizes on the PLC
    // medium.
    let rates = [Mbps::new(160.0), Mbps::new(60.0)];
    let cfg = Mac1901Config {
        duration: Seconds::new(20.0),
        ..Mac1901Config::default()
    };
    let out = simulate_1901(&rates, &cfg, 13).expect("valid sim");
    let airtime_ratio = out.airtime_fraction[0] / out.airtime_fraction[1];
    assert!(
        (0.8..1.25).contains(&airtime_ratio),
        "airtime shares diverged: {airtime_ratio}"
    );
    // Throughput stays proportional to rate under equal airtime.
    let throughput_ratio = out.per_station[0] / out.per_station[1];
    assert!(
        (throughput_ratio - 160.0 / 60.0).abs() / (160.0 / 60.0) < 0.25,
        "throughput not rate-proportional: {throughput_ratio}"
    );
}

#[test]
fn analytic_timeshare_matches_mac_sim_shape_at_k2() {
    let caps = [Mbps::new(160.0), Mbps::new(60.0)];
    let analytic = allocate_time_fair(&[
        ExtenderDemand::saturated(caps[0]),
        ExtenderDemand::saturated(caps[1]),
    ])
    .expect("valid demands");
    let cfg = Mac1901Config {
        duration: Seconds::new(20.0),
        ..Mac1901Config::default()
    };
    let singles: Vec<f64> = caps
        .iter()
        .map(|&c| simulate_1901(&[c], &cfg, 13).expect("valid").per_station[0].value())
        .collect();
    let pair = simulate_1901(&caps, &cfg, 13).expect("valid");
    for j in 0..2 {
        let analytic_frac = analytic.throughput[j].value() / caps[j].value();
        let sim_frac = pair.per_station[j].value() / singles[j];
        assert!(
            (analytic_frac - sim_frac).abs() < 0.12,
            "extender {j}: analytic {analytic_frac} vs sim {sim_frac}"
        );
    }
}

#[test]
fn building_pipeline_produces_papers_capacity_band() {
    use wolt_plc::capacity::sample_outlet_capacities;
    use wolt_plc::channel::PlcChannelModel;
    use wolt_plc::topology::BuildingConfig;
    use wolt_support::rng::SeedableRng;

    let mut rng = wolt_support::rng::ChaCha8Rng::seed_from_u64(77);
    let caps = sample_outlet_capacities(
        &mut rng,
        60,
        &BuildingConfig::default(),
        &PlcChannelModel::homeplug_av2(),
    )
    .expect("sampling works");
    let in_band = caps
        .iter()
        .filter(|c| (40.0..=200.0).contains(&c.value()))
        .count();
    // The bulk of outlets should land around the paper's measured
    // 60–160 Mbit/s band.
    assert!(
        in_band as f64 / caps.len() as f64 > 0.7,
        "only {in_band}/60 outlets in band"
    );
}

#[test]
fn wifi_radio_rate_diversity_spans_the_table() {
    // The enterprise radio must produce both fast and slow users across a
    // 100 m plane — without diversity none of the association results are
    // meaningful.
    use wolt_units::Meters;
    use wolt_wifi::WifiRadio;

    let radio = WifiRadio::enterprise_80211b();
    let near = radio.rate_at_distance(Meters::new(3.0)).expect("in range");
    let far = radio
        .rate_at_distance(Meters::new(radio.association_range().value() * 0.95))
        .expect("in range");
    assert!(near.value() / far.value() > 5.0, "near {near} vs far {far}");
}
