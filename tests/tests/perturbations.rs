//! Integration: dynamic simulation under mobility and extender outages
//! (failure injection beyond the paper).

use wolt_sim::dynamics::DynamicsConfig;
use wolt_sim::experiment::{DynamicSimulation, OnlinePolicy};
use wolt_sim::perturb::{CapacityDriftConfig, MobilityConfig, OutageConfig};
use wolt_sim::scenario::ScenarioConfig;

fn base() -> DynamicSimulation {
    DynamicSimulation::new(ScenarioConfig::enterprise(24), DynamicsConfig::default())
}

#[test]
fn mobility_runs_and_reports_moved_users() {
    let sim = base().with_mobility(MobilityConfig { max_step: 8.0 });
    let records = sim.run(OnlinePolicy::Wolt, 4, 1).expect("runs");
    assert_eq!(records[0].moved_users, 0, "epoch 1 is pristine");
    assert!(
        records[1..].iter().any(|r| r.moved_users > 0),
        "nobody ever moved: {records:?}"
    );
    assert!(records.iter().all(|r| r.aggregate > 0.0));
}

#[test]
fn mobility_triggers_wolt_reassignments() {
    // Even with zero population churn, moving users changes rates and
    // WOLT re-optimizes.
    let sim = DynamicSimulation::new(
        ScenarioConfig::enterprise(24),
        DynamicsConfig {
            arrival_rate: 0.0,
            departure_rate: 0.0,
            epoch_length: 1.0,
        },
    )
    .with_mobility(MobilityConfig { max_step: 15.0 });
    let records = sim.run(OnlinePolicy::Wolt, 5, 2).expect("runs");
    let total_reassignments: usize = records.iter().map(|r| r.reassignments).sum();
    assert!(
        total_reassignments > 0,
        "mobility never triggered a re-association"
    );
}

#[test]
fn outages_run_and_report_down_extenders() {
    let sim = base().with_outages(OutageConfig {
        probability: 0.3,
        max_concurrent: 4,
    });
    let records = sim.run(OnlinePolicy::Wolt, 5, 3).expect("runs");
    assert_eq!(records[0].down_extenders, 0, "epoch 1 is pristine");
    assert!(
        records[1..].iter().any(|r| r.down_extenders > 0),
        "no outage ever sampled: {records:?}"
    );
    // The network keeps serving everyone.
    assert!(records.iter().all(|r| r.aggregate > 0.0));
}

#[test]
fn outages_respect_the_concurrency_cap() {
    let sim = base().with_outages(OutageConfig {
        probability: 0.9,
        max_concurrent: 2,
    });
    let records = sim.run(OnlinePolicy::Rssi, 6, 4).expect("runs");
    assert!(records.iter().all(|r| r.down_extenders <= 2));
}

#[test]
fn greedy_survives_outages_by_replacing_stranded_users() {
    // Users on a dead extender lose their assignment; the greedy online
    // policy must re-place them even though it "never reassigns".
    let sim = base().with_outages(OutageConfig {
        probability: 0.4,
        max_concurrent: 5,
    });
    let records = sim.run(OnlinePolicy::GreedyOnline, 6, 5).expect("runs");
    assert!(records.iter().all(|r| r.aggregate > 0.0));
}

#[test]
fn combined_perturbations_stay_consistent() {
    let sim = base()
        .with_mobility(MobilityConfig { max_step: 5.0 })
        .with_outages(OutageConfig {
            probability: 0.2,
            max_concurrent: 3,
        });
    for policy in [
        OnlinePolicy::Wolt,
        OnlinePolicy::GreedyOnline,
        OnlinePolicy::Rssi,
    ] {
        let records = sim.run(policy, 5, 6).expect("runs");
        let mut expected_users = records[0].users as i64;
        for r in &records[1..] {
            expected_users += r.arrivals as i64 - r.departures as i64;
            assert_eq!(r.users as i64, expected_users);
        }
    }
}

#[test]
fn perturbed_runs_are_deterministic_per_seed() {
    let sim = base()
        .with_mobility(MobilityConfig { max_step: 5.0 })
        .with_outages(OutageConfig {
            probability: 0.2,
            max_concurrent: 3,
        });
    let a = sim.run(OnlinePolicy::Wolt, 4, 9).expect("runs");
    let b = sim.run(OnlinePolicy::Wolt, 4, 9).expect("runs");
    assert_eq!(a, b);
}

#[test]
fn capacity_drift_runs_and_stays_reasonable() {
    let drifting = base().with_capacity_drift(CapacityDriftConfig { sigma: 0.1 });
    let records = drifting.run(OnlinePolicy::Wolt, 5, 7).expect("runs");
    assert!(records.iter().all(|r| r.aggregate > 0.0));
    // Mild drift should leave the mean aggregate within ~15% of the
    // drift-free baseline.
    let clean = base().run(OnlinePolicy::Wolt, 5, 7).expect("runs");
    let drift_mean: f64 = records.iter().map(|r| r.aggregate).sum::<f64>() / records.len() as f64;
    let clean_mean: f64 = clean.iter().map(|r| r.aggregate).sum::<f64>() / clean.len() as f64;
    assert!(
        (drift_mean - clean_mean).abs() / clean_mean < 0.15,
        "drift {drift_mean} vs clean {clean_mean}"
    );
}

#[test]
fn capacity_drift_is_deterministic_per_seed() {
    let sim = base().with_capacity_drift(CapacityDriftConfig { sigma: 0.2 });
    let a = sim.run(OnlinePolicy::GreedyOnline, 4, 3).expect("runs");
    let b = sim.run(OnlinePolicy::GreedyOnline, 4, 3).expect("runs");
    assert_eq!(a, b);
}

#[test]
fn wolt_degrades_gracefully_under_outages() {
    // Losing extenders costs throughput but not catastrophically when
    // coverage is preserved (at most ~linearly in the lost share).
    let clean = base().run(OnlinePolicy::Wolt, 5, 10).expect("runs");
    let faulty = base()
        .with_outages(OutageConfig {
            probability: 0.25,
            max_concurrent: 4,
        })
        .run(OnlinePolicy::Wolt, 5, 10)
        .expect("runs");
    let clean_mean: f64 = clean.iter().map(|r| r.aggregate).sum::<f64>() / clean.len() as f64;
    let faulty_mean: f64 = faulty.iter().map(|r| r.aggregate).sum::<f64>() / faulty.len() as f64;
    assert!(
        faulty_mean > 0.5 * clean_mean,
        "outages crushed the network: {faulty_mean} vs {clean_mean}"
    );
}
