//! Integration: the dynamic epoch simulation (Fig. 6b/6c machinery).

use wolt_sim::dynamics::DynamicsConfig;
use wolt_sim::experiment::{DynamicSimulation, OnlinePolicy};
use wolt_sim::scenario::ScenarioConfig;

fn simulation() -> DynamicSimulation {
    DynamicSimulation::new(ScenarioConfig::enterprise(36), DynamicsConfig::default())
}

#[test]
fn population_follows_the_papers_trajectory() {
    // 36 → ~66 → ~102 (±20% tolerance over a single run's randomness).
    let records = simulation().run(OnlinePolicy::Rssi, 3, 42).expect("runs");
    assert_eq!(records[0].users, 36);
    assert!(
        (50..=85).contains(&records[1].users),
        "epoch 2 population {}",
        records[1].users
    );
    assert!(
        (80..=130).contains(&records[2].users),
        "epoch 3 population {}",
        records[2].users
    );
}

#[test]
fn wolt_stays_ahead_of_greedy_across_epochs() {
    let sim = simulation();
    let epochs = 4;
    let mut wolt_sum = vec![0.0; epochs];
    let mut greedy_sum = vec![0.0; epochs];
    for seed in 0..5 {
        let w = sim.run(OnlinePolicy::Wolt, epochs, seed).expect("runs");
        let g = sim
            .run(OnlinePolicy::GreedyOnline, epochs, seed)
            .expect("runs");
        for e in 0..epochs {
            wolt_sum[e] += w[e].aggregate;
            greedy_sum[e] += g[e].aggregate;
        }
    }
    for e in 0..epochs {
        assert!(
            wolt_sum[e] >= greedy_sum[e] * 0.98,
            "epoch {}: WOLT {} vs Greedy {}",
            e + 1,
            wolt_sum[e],
            greedy_sum[e]
        );
    }
}

#[test]
fn reassignments_bounded_by_twice_arrivals() {
    // The paper's Fig. 6c observation, as an invariant over several runs.
    let sim = simulation();
    for seed in 0..5 {
        let records = sim.run(OnlinePolicy::Wolt, 5, seed).expect("runs");
        for r in &records[1..] {
            assert!(
                r.reassignments <= 2 * r.arrivals + 8,
                "seed {seed} epoch {}: {} reassignments for {} arrivals",
                r.epoch,
                r.reassignments,
                r.arrivals
            );
        }
    }
}

#[test]
fn aggregate_saturates_rather_than_collapsing() {
    // Fig. 6b: "the aggregate throughput of the network gradually
    // increases and saturates". Between consecutive epochs WOLT's
    // aggregate must not drop by more than noise.
    let records = simulation().run(OnlinePolicy::Wolt, 5, 9).expect("runs");
    for pair in records.windows(2) {
        assert!(
            pair[1].aggregate > 0.85 * pair[0].aggregate,
            "aggregate collapsed: {} -> {}",
            pair[0].aggregate,
            pair[1].aggregate
        );
    }
}

#[test]
fn departures_never_exceed_population() {
    let sim = DynamicSimulation::new(
        ScenarioConfig::enterprise(5),
        DynamicsConfig {
            arrival_rate: 0.5,
            departure_rate: 5.0,
            epoch_length: 4.0,
        },
    );
    // Heavy departures on a tiny population: the run must stay consistent
    // (counts non-negative, no panics) even when the network nearly
    // empties.
    let records = sim.run(OnlinePolicy::Rssi, 6, 3).expect("runs");
    for r in &records {
        assert!(r.users < 100);
    }
}

#[test]
fn epoch_records_are_internally_consistent() {
    let records = simulation()
        .run(OnlinePolicy::GreedyOnline, 4, 11)
        .expect("runs");
    let mut expected_users = records[0].users as i64;
    for r in &records[1..] {
        expected_users += r.arrivals as i64 - r.departures as i64;
        assert_eq!(r.users as i64, expected_users, "epoch {}", r.epoch);
    }
}
