//! Integration: the paper's Fig. 3 case study, end to end across crates.
//!
//! These are *exact-number* regressions: the paper publishes 22, 30 and 40
//! Mbit/s for the three association strategies, and our model reproduces
//! them to the decimal.

use wolt_core::baselines::{Greedy, Optimal, Rssi, SelfishGreedy};
use wolt_core::{evaluate, AssociationPolicy, Wolt};
use wolt_tests::fig3_network;

fn aggregate_of(policy: &dyn AssociationPolicy) -> f64 {
    let net = fig3_network();
    let assoc = policy.associate(&net).expect("policy runs");
    evaluate(&net, &assoc)
        .expect("valid association")
        .aggregate
        .value()
}

#[test]
fn rssi_lands_at_22() {
    // 240/11 = 21.81… — "Total throughput = 11+11 = 22 Mbps" (Fig. 3b).
    assert!((aggregate_of(&Rssi) - 240.0 / 11.0).abs() < 1e-9);
}

#[test]
fn greedy_lands_at_30() {
    // "Total throughput = 15+15 = 30 Mbps" (Fig. 3c), which requires the
    // leftover-airtime redistribution the paper observed on hardware.
    assert!((aggregate_of(&Greedy::new()) - 30.0).abs() < 1e-9);
}

#[test]
fn selfish_greedy_also_lands_at_30_here() {
    // On this 2-user instance the §III-B selfish narrative coincides with
    // the §V-B aggregate-maximizing greedy.
    assert!((aggregate_of(&SelfishGreedy::new()) - 30.0).abs() < 1e-9);
}

#[test]
fn optimal_lands_at_40() {
    // "Total throughput = 10+30 = 40 Mbps" (Fig. 3d).
    assert!((aggregate_of(&Optimal::new()) - 40.0).abs() < 1e-9);
}

#[test]
fn wolt_recovers_the_optimum() {
    assert!((aggregate_of(&Wolt::new()) - 40.0).abs() < 1e-9);
}

#[test]
fn wolt_matches_optimal_assignment_exactly() {
    let net = fig3_network();
    let wolt = Wolt::new().associate(&net).expect("wolt runs");
    let optimal = Optimal::new().associate(&net).expect("optimal runs");
    assert_eq!(wolt, optimal);
}

#[test]
fn per_user_numbers_match_fig3d() {
    let net = fig3_network();
    let assoc = Wolt::new().associate(&net).expect("wolt runs");
    let eval = evaluate(&net, &assoc).expect("valid");
    // User 1 gets 10 (WiFi-bound on extender 2), user 2 gets 30
    // (PLC-bound on extender 1 despite its 40 Mbit/s WiFi link).
    assert!((eval.per_user[0].value() - 10.0).abs() < 1e-9);
    assert!((eval.per_user[1].value() - 30.0).abs() < 1e-9);
}

#[test]
fn greedy_per_user_includes_redistribution_bonus() {
    let net = fig3_network();
    let assoc = Greedy::new().associate(&net).expect("greedy runs");
    let eval = evaluate(&net, &assoc).expect("valid");
    // Extender 2's half-share alone would give user 2 only 10 Mbit/s; the
    // paper measured 15 thanks to extender 1's unused airtime.
    assert!((eval.per_user[1].value() - 15.0).abs() < 1e-9);
}

#[test]
fn strategy_ordering_is_strict_on_the_case_study() {
    let rssi = aggregate_of(&Rssi);
    let greedy = aggregate_of(&Greedy::new());
    let optimal = aggregate_of(&Optimal::new());
    assert!(rssi < greedy);
    assert!(greedy < optimal);
}
