//! Integration: the threaded testbed rig agrees with the pure simulation
//! (the check behind the paper's Fig. 4c).

use wolt_core::baselines::{Greedy, Rssi};
use wolt_core::{evaluate, AssociationPolicy, Wolt};
use wolt_plc::capacity::CapacityEstimator;
use wolt_testbed::{run_rig, ControllerPolicy, RigConfig};
use wolt_tests::lab_scenario;

fn noiseless(policy: ControllerPolicy) -> RigConfig {
    RigConfig {
        estimator: CapacityEstimator {
            rounds: 1,
            noise_sigma: 0.0,
        },
        ..RigConfig::new(policy)
    }
}

#[test]
fn rig_and_simulation_agree_for_rssi() {
    for seed in 0..6 {
        let scenario = lab_scenario(7, seed);
        let net = scenario.network().expect("builds");
        let rig = run_rig(&scenario, &noiseless(ControllerPolicy::Rssi), 0).expect("rig runs");
        let sim = evaluate(&net, &Rssi.associate(&net).expect("runs")).expect("valid");
        assert!(
            (rig.aggregate - sim.aggregate.value()).abs() < 1e-9,
            "seed {seed}: rig {} vs sim {}",
            rig.aggregate,
            sim.aggregate
        );
    }
}

#[test]
fn rig_and_simulation_agree_for_greedy() {
    for seed in 0..6 {
        let scenario = lab_scenario(7, seed);
        let net = scenario.network().expect("builds");
        let rig = run_rig(&scenario, &noiseless(ControllerPolicy::Greedy), 0).expect("rig runs");
        let sim = evaluate(&net, &Greedy::new().associate(&net).expect("runs")).expect("valid");
        assert!(
            (rig.aggregate - sim.aggregate.value()).abs() < 1e-9,
            "seed {seed}: rig {} vs sim {}",
            rig.aggregate,
            sim.aggregate
        );
    }
}

#[test]
fn rig_and_simulation_agree_for_wolt() {
    for seed in 0..6 {
        let scenario = lab_scenario(7, seed);
        let net = scenario.network().expect("builds");
        let rig = run_rig(&scenario, &noiseless(ControllerPolicy::Wolt), 0).expect("rig runs");
        let sim = evaluate(&net, &Wolt::new().associate(&net).expect("runs")).expect("valid");
        assert!(
            (rig.aggregate - sim.aggregate.value()).abs() < 1e-9,
            "seed {seed}: rig {} vs sim {}",
            rig.aggregate,
            sim.aggregate
        );
    }
}

#[test]
fn estimation_noise_only_perturbs_decisions_slightly() {
    // With the default 3% measurement noise, the WOLT decision computed on
    // estimated capacities still lands within a few percent of the
    // noiseless aggregate.
    let mut noiseless_total = 0.0;
    let mut noisy_total = 0.0;
    for seed in 0..10 {
        let scenario = lab_scenario(7, seed);
        noiseless_total += run_rig(&scenario, &noiseless(ControllerPolicy::Wolt), seed)
            .expect("rig runs")
            .aggregate;
        noisy_total += run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), seed)
            .expect("rig runs")
            .aggregate;
    }
    let rel = (noiseless_total - noisy_total).abs() / noiseless_total;
    assert!(rel < 0.05, "estimation noise cost {rel:.3} of throughput");
}

#[test]
fn rssi_rig_sends_no_directives_wolt_rig_reassigns() {
    let scenario = lab_scenario(7, 3);
    let rssi = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Rssi), 0).expect("runs");
    assert_eq!(rssi.directives, 0);
    assert_eq!(rssi.switches, 0);
    let wolt = run_rig(&scenario, &RigConfig::new(ControllerPolicy::Wolt), 0).expect("runs");
    // On a heterogeneous topology WOLT almost always moves someone off
    // the RSSI default; directives must cover every switch.
    assert!(wolt.directives >= wolt.switches);
}

#[test]
fn testbed_experiment_reproduces_fig4a_ordering() {
    use wolt_testbed::experiment::{aggregate_summary, TestbedExperiment};
    let comparisons = TestbedExperiment {
        topologies: 10,
        ..TestbedExperiment::default()
    }
    .run()
    .expect("experiment runs");
    let summary = aggregate_summary(&comparisons);
    assert!(summary.wolt >= summary.greedy * 0.98, "{summary:?}");
    assert!(summary.wolt > summary.rssi, "{summary:?}");
}
