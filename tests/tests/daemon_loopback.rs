//! End-to-end loopback tests for `wolt-daemon`: the networked Central
//! Controller must be *indistinguishable* from the in-process rig.
//!
//! The acceptance bar is byte-identity: a clean TCP session over
//! 127.0.0.1 must produce a [`SessionReport`] whose canonical rendering
//! equals the in-process [`run_faulty_session`] outcome for the same
//! (scenario, seed, policy) — and a daemon killed mid-session must
//! restore from its snapshot and finish with that same report, issuing
//! no extra directives for work already done.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::thread;

use wolt_daemon::{run_agent, Daemon, DaemonConfig, DaemonOutcome};
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::{ChaCha8Rng, SeedableRng};
use wolt_testbed::{
    run_faulty_session, ControllerPolicy, FaultPlan, RigConfig, SessionEvent, SessionReport,
};

const NOISE_SEED: u64 = 7;

fn lab_scenario(seed: u64) -> Scenario {
    let cfg = ScenarioConfig::lab(7);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Scenario::generate(&cfg, &mut rng).unwrap()
}

fn rig_reference(
    scenario: &Scenario,
    policy: ControllerPolicy,
    events: &[SessionEvent],
) -> SessionReport {
    run_faulty_session(
        scenario,
        &RigConfig::new(policy),
        events,
        NOISE_SEED,
        &FaultPlan::none(),
    )
    .unwrap()
}

/// Boots a daemon on a fresh loopback port, connects one agent thread
/// per scenario user, and runs the session to the end.
fn run_loopback(
    scenario: &Scenario,
    events: &[SessionEvent],
    config: DaemonConfig,
) -> DaemonOutcome {
    let daemon = Daemon::bind("127.0.0.1:0", scenario.clone(), events.to_vec(), config).unwrap();
    let addr: SocketAddr = daemon.local_addr().unwrap();
    let agents: Vec<_> = (0..scenario.user_positions.len())
        .map(|i| {
            let scenario = scenario.clone();
            thread::spawn(move || run_agent(addr, &scenario, i, &format!("laptop-{i}")))
        })
        .collect();
    let outcome = daemon.run().unwrap();
    for handle in agents {
        handle.join().unwrap().unwrap();
    }
    outcome
}

fn join_all(n: usize) -> Vec<SessionEvent> {
    (0..n).map(SessionEvent::Join).collect()
}

#[test]
fn loopback_session_is_byte_identical_to_in_process_rig() {
    // The paper's lab shape: 3 extenders, 7 laptops.
    let scenario = lab_scenario(42);
    assert_eq!(scenario.extender_positions.len(), 3);
    let events = join_all(7);
    for policy in [
        ControllerPolicy::Wolt,
        ControllerPolicy::Greedy,
        ControllerPolicy::Rssi,
    ] {
        let reference = rig_reference(&scenario, policy, &events);
        let mut config = DaemonConfig::new(policy);
        config.noise_seed = NOISE_SEED;
        let outcome = run_loopback(&scenario, &events, config);
        assert!(outcome.completed, "{policy:?} session did not complete");
        assert_eq!(
            outcome.report.canonical(),
            reference.canonical(),
            "daemon diverged from the rig under {policy:?}"
        );
    }
}

#[test]
fn loopback_churn_session_matches_rig() {
    let scenario = lab_scenario(3);
    let mut events = join_all(7);
    events.push(SessionEvent::Leave(2));
    events.push(SessionEvent::Leave(5));
    events.push(SessionEvent::Join(2));
    let reference = rig_reference(&scenario, ControllerPolicy::Wolt, &events);
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    let outcome = run_loopback(&scenario, &events, config);
    assert!(outcome.completed);
    assert_eq!(outcome.report.canonical(), reference.canonical());
}

#[test]
fn snapshot_restore_resumes_with_no_resolve_regression() {
    let scenario = lab_scenario(11);
    let mut events = join_all(7);
    events.push(SessionEvent::Leave(1));
    events.push(SessionEvent::Leave(4));
    let reference = rig_reference(&scenario, ControllerPolicy::Wolt, &events);

    let snap_dir: PathBuf =
        std::env::temp_dir().join(format!("wolt-daemon-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);

    // First incarnation: dies (gracefully, but mid-session) after five
    // completed epochs, leaving its generational store behind.
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    config.snapshot_dir = Some(snap_dir.clone());
    config.stop_after = Some(5);
    let first = run_loopback(&scenario, &events, config);
    assert!(!first.completed);
    assert_eq!(first.epochs_done, 5);

    // Second incarnation: restores the newest generation, hands
    // reconnecting agents their saved attachments, and resumes at
    // epoch 5.
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    config.snapshot_dir = Some(snap_dir.clone());
    let second = run_loopback(&scenario, &events, config);
    std::fs::remove_dir_all(&snap_dir).unwrap();

    assert!(second.completed);
    assert_eq!(second.epochs_done, events.len());
    // Byte-identical outcome, and no re-solve regression: the resumed
    // run issues exactly as many directives as an uninterrupted one
    // (canonical() covers the directive count, but assert it explicitly
    // since it is the acceptance criterion).
    assert_eq!(second.report.canonical(), reference.canonical());
    assert_eq!(
        second.report.outcome.directives,
        reference.outcome.directives
    );
}

/// The newest snapshot generation inside a store directory.
fn newest_generation(dir: &std::path::Path) -> PathBuf {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|entry| {
            let name = entry.unwrap().file_name().into_string().ok()?;
            let generation: u64 = name
                .strip_prefix("snapshot.")?
                .strip_suffix(".json")?
                .parse()
                .ok()?;
            Some((generation, dir.join(name)))
        })
        .max_by_key(|(generation, _)| *generation)
        .expect("store has at least one generation")
        .1
}

#[test]
fn torn_newest_generation_rolls_back_and_still_matches_the_rig() {
    let scenario = lab_scenario(23);
    let mut events = join_all(7);
    events.push(SessionEvent::Leave(0));
    events.push(SessionEvent::Leave(6));
    let reference = rig_reference(&scenario, ControllerPolicy::Wolt, &events);

    let snap_dir: PathBuf =
        std::env::temp_dir().join(format!("wolt-daemon-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);

    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    config.snapshot_dir = Some(snap_dir.clone());
    config.stop_after = Some(6);
    let first = run_loopback(&scenario, &events, config);
    assert_eq!(first.epochs_done, 6);

    // Simulate the crash the mid-write chaos point produces: the newest
    // generation is torn in half. The restarted daemon must silently
    // roll back one generation (epoch 5) and *replay* epoch 6 — and the
    // replay must be byte-identical, because the snapshot carries
    // complete decision state.
    let newest = newest_generation(&snap_dir);
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    config.snapshot_dir = Some(snap_dir.clone());
    let second = run_loopback(&scenario, &events, config);
    std::fs::remove_dir_all(&snap_dir).unwrap();

    assert!(second.completed);
    assert_eq!(second.report.canonical(), reference.canonical());
    assert_eq!(
        second.report.outcome.directives,
        reference.outcome.directives
    );
}

#[test]
fn operator_stop_envelope_halts_the_daemon_gracefully() {
    use wolt_daemon::{wire, Envelope};
    use wolt_testbed::TopologyOutcome;

    let scenario = lab_scenario(5);
    let events = join_all(7);
    let daemon = Daemon::bind(
        "127.0.0.1:0",
        scenario.clone(),
        events,
        DaemonConfig::new(ControllerPolicy::Rssi),
    )
    .unwrap();
    let addr = daemon.local_addr().unwrap();
    let agents: Vec<_> = (0..7)
        .map(|i| {
            let scenario = scenario.clone();
            thread::spawn(move || run_agent(addr, &scenario, i, "agent"))
        })
        .collect();
    // A bare control connection sends the stop request before the
    // session can finish all events (it may land at any epoch — the
    // assertion is only that the daemon exits cleanly and reports an
    // honest `completed` flag).
    let ctl = thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        wire::send(
            &mut stream,
            &Envelope::Shutdown {
                reason: "test operator".into(),
            },
        )
        .unwrap();
    });
    let outcome = daemon.run().unwrap();
    ctl.join().unwrap();
    for handle in agents {
        handle.join().unwrap().unwrap();
    }
    let TopologyOutcome { ref policy, .. } = outcome.report.outcome;
    assert_eq!(policy, "RSSI");
    assert!(outcome.epochs_done <= 7);
    assert_eq!(outcome.completed, outcome.epochs_done == 7);
}

#[test]
fn live_daemon_answers_metrics_envelope_over_the_wire() {
    use std::net::TcpStream;
    use std::time::{Duration, Instant};
    use wolt_daemon::{wire, Envelope};
    use wolt_support::obs::ObsSnapshot;

    let scenario = lab_scenario(42);
    let events = join_all(7);
    let mut config = DaemonConfig::new(ControllerPolicy::Wolt);
    config.noise_seed = NOISE_SEED;
    // Keep the listener serving metrics queries for a beat after the
    // last event, so the poller deterministically observes the finished
    // session even if it connects late.
    config.linger = Duration::from_millis(1500);
    let daemon = Daemon::bind("127.0.0.1:0", scenario.clone(), events, config).unwrap();
    let addr: SocketAddr = daemon.local_addr().unwrap();

    let agents: Vec<_> = (0..7)
        .map(|i| {
            let scenario = scenario.clone();
            thread::spawn(move || run_agent(addr, &scenario, i, &format!("laptop-{i}")))
        })
        .collect();

    // A control connection polling the live daemon until the counters
    // show real work. Several requests ride the same connection — the
    // daemon must keep a control channel open across replies.
    let poller = thread::spawn(move || -> ObsSnapshot {
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("could not reach the daemon: {e}"),
            }
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        loop {
            wire::send(&mut stream, &Envelope::MetricsRequest).expect("metrics request sends");
            match wire::recv(&mut stream).expect("metrics reply arrives") {
                Some(Envelope::Metrics { metrics }) => {
                    if metrics.counter("core.solves") > 0 && metrics.counter("cc.directives") > 0 {
                        return metrics;
                    }
                    assert!(
                        Instant::now() < deadline,
                        "daemon never reported a non-zero solve count; last snapshot: {metrics:?}"
                    );
                    thread::sleep(Duration::from_millis(50));
                }
                other => panic!("expected a metrics reply, got {other:?}"),
            }
        }
    });

    let outcome = daemon.run().unwrap();
    let live = poller.join().expect("metrics poller");
    for handle in agents {
        handle.join().unwrap().unwrap();
    }

    assert!(outcome.completed);
    // The live snapshot saw a working controller: frames flowed both
    // ways and the wire answered at least one metrics request (its own).
    assert!(live.counter("daemon.frames_in") > 0);
    assert!(live.counter("daemon.frames_out") > 0);
    assert!(live.counter("daemon.bytes_in") > 0);
    assert!(live.counter("daemon.metrics_requests") > 0);
}
