//! Integration: the `wolt` CLI library pipeline, including file I/O.

use std::path::PathBuf;

use wolt_cli::commands::{compare, generate, solve, PolicyChoice, PresetChoice};
use wolt_cli::spec::NetworkSpec;

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("wolt-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_write_read_solve_round_trip() {
    let spec = generate(PresetChoice::Lab, 7, 42).expect("generate");
    let path = temp_path("roundtrip.json");
    std::fs::write(&path, spec.to_json()).expect("write");
    let loaded =
        NetworkSpec::from_json(&std::fs::read_to_string(&path).expect("read")).expect("parse");
    std::fs::remove_file(&path).ok();

    // Same spec → same solve result.
    let direct = solve(&spec, PolicyChoice::Wolt, 0).expect("solve direct");
    let via_file = solve(&loaded, PolicyChoice::Wolt, 0).expect("solve via file");
    assert_eq!(direct.association, via_file.association);
    assert!((direct.aggregate_mbps - via_file.aggregate_mbps).abs() < 1e-6);
}

#[test]
fn solve_report_is_consistent_with_library_evaluation() {
    let spec = generate(PresetChoice::Enterprise, 20, 5).expect("generate");
    let report = solve(&spec, PolicyChoice::Greedy, 0).expect("solve");
    let network = spec.to_network().expect("network");
    let assoc = wolt_core::Association::complete(report.association.clone());
    let eval = wolt_core::evaluate(&network, &assoc).expect("evaluate");
    assert!((report.aggregate_mbps - eval.aggregate.value()).abs() < 1e-9);
    let sum: f64 = report.per_user_mbps.iter().sum();
    assert!((sum - report.aggregate_mbps).abs() < 1e-6);
}

#[test]
fn compare_is_deterministic_and_ranks_wolt_well() {
    let spec = generate(PresetChoice::Enterprise, 24, 9).expect("generate");
    let a = compare(&spec, 0).expect("compare");
    let b = compare(&spec, 0).expect("compare");
    assert_eq!(a, b);
    let wolt = a.iter().find(|r| r.policy == "WOLT").expect("wolt ran");
    let rssi = a.iter().find(|r| r.policy == "RSSI").expect("rssi ran");
    assert!(wolt.aggregate_mbps >= rssi.aggregate_mbps - 1e-9);
}

#[test]
fn fig3_through_the_cli_layer() {
    let spec = NetworkSpec {
        capacities: vec![60.0, 20.0],
        rates: vec![vec![15.0, 10.0], vec![40.0, 20.0]],
    };
    let optimal = solve(&spec, PolicyChoice::Optimal, 0).expect("optimal");
    let wolt = solve(&spec, PolicyChoice::Wolt, 0).expect("wolt");
    assert!((optimal.aggregate_mbps - 40.0).abs() < 1e-9);
    assert_eq!(optimal.association, wolt.association);
}

#[test]
fn malformed_inputs_surface_clean_errors() {
    assert!(NetworkSpec::from_json("[1,2,3]").is_err());
    let bad = NetworkSpec {
        capacities: vec![60.0],
        rates: vec![vec![15.0, 10.0]],
    };
    assert!(bad.to_network().is_err());
    assert!(PolicyChoice::parse("sorcery").is_err());
}
