//! Shared fixtures for the cross-crate integration tests.

use wolt_core::Network;
use wolt_sim::scenario::ScenarioConfig;
use wolt_sim::Scenario;
use wolt_support::rng::ChaCha8Rng;
use wolt_support::rng::SeedableRng;

/// The paper's Fig. 3 case-study network: 2 extenders (PLC 60/20), 2 users
/// (rates [[15, 10], [40, 20]]).
pub fn fig3_network() -> Network {
    Network::from_raw(vec![60.0, 20.0], vec![vec![15.0, 10.0], vec![40.0, 20.0]])
        .expect("case-study network is valid")
}

/// A seeded enterprise scenario (15 extenders) with `users` users.
pub fn enterprise_scenario(users: usize, seed: u64) -> Scenario {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Scenario::generate(&ScenarioConfig::enterprise(users), &mut rng)
        .expect("enterprise scenario generates")
}

/// A seeded lab scenario (3 extenders) with `users` users.
pub fn lab_scenario(users: usize, seed: u64) -> Scenario {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Scenario::generate(&ScenarioConfig::lab(users), &mut rng).expect("lab scenario generates")
}

/// A seeded [`Network`] from the enterprise scenario.
pub fn enterprise_network(users: usize, seed: u64) -> Network {
    enterprise_scenario(users, seed)
        .network()
        .expect("network builds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(fig3_network().users(), 2);
        assert_eq!(enterprise_network(10, 1).extenders(), 15);
        assert_eq!(lab_scenario(7, 1).user_positions.len(), 7);
    }
}
